"""Tests for the pluggable synthesis-backend layer (:mod:`repro.qor.backends`).

Covers the protocol itself (spec canonicalisation, slugs, resolution,
CLI argument parsing), the three built-in implementations, and the two
integration surfaces that must stay bit-identical for native problems:
evaluator cache keys and :class:`Problem` / :class:`EvaluatorSpec`
identities.
"""

import json

import pytest

from repro.api import Problem
from repro.engine.spec import EvaluatorSpec
from repro.qor import QoREvaluator
from repro.qor.backends import (
    DEFAULT_BACKEND_KEY,
    BackendError,
    ExternalABCBackend,
    NativeBackend,
    ReplayBackend,
    SynthesisBackend,
    TapeMismatch,
    aig_fingerprint,
    backend_slug,
    canonical_backend_spec,
    parse_backend_argument,
    resolve_backend,
)
from repro.registry import BACKENDS
from repro.synth.flows import RESYN2_SEQUENCE


# ---------------------------------------------------------------------------
# Spec canonicalisation, slugs, resolution
# ---------------------------------------------------------------------------
class TestSpecPlumbing:
    def test_builtin_keys_registered(self):
        assert {"native", "replay", "abc"} <= set(BACKENDS.keys())

    def test_none_resolves_to_native(self):
        backend = resolve_backend(None)
        assert isinstance(backend, NativeBackend)
        assert backend.backend_spec == DEFAULT_BACKEND_KEY

    def test_instance_passthrough(self):
        backend = NativeBackend()
        assert resolve_backend(backend) is backend

    def test_dict_spec_resolution(self, tmp_path):
        backend = resolve_backend(
            {"backend": "replay", "tape": str(tmp_path / "t.json")})
        assert isinstance(backend, ReplayBackend)

    def test_json_string_spec_resolution(self, tmp_path):
        spec = json.dumps({"backend": "replay", "tape": str(tmp_path / "t.json")})
        assert isinstance(resolve_backend(spec), ReplayBackend)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            resolve_backend("no-such-backend")

    def test_canonical_spec_is_sorted_and_stable(self, tmp_path):
        tape = str(tmp_path / "t.json")
        a = canonical_backend_spec({"tape": tape, "backend": "replay"})
        b = canonical_backend_spec({"backend": "replay", "tape": tape})
        assert a == b
        assert json.loads(a) == {"backend": "replay", "tape": tape}

    def test_canonical_bare_key_passthrough(self):
        assert canonical_backend_spec("native") == "native"
        assert canonical_backend_spec(None) == DEFAULT_BACKEND_KEY

    def test_backend_spec_round_trips_through_resolve(self, tmp_path):
        original = ReplayBackend(tape=str(tmp_path / "t.json"))
        clone = resolve_backend(original.backend_spec)
        assert clone.backend_spec == original.backend_spec
        assert clone == original
        assert hash(clone) == hash(original)

    def test_backend_slug(self, tmp_path):
        assert backend_slug("native") == "native"
        assert backend_slug("abc") == "abc"
        slug = backend_slug({"backend": "replay", "tape": str(tmp_path / "t")})
        assert slug.startswith("replay-")
        assert len(slug) == len("replay-") + 6

    def test_slug_distinguishes_parameterisations(self, tmp_path):
        a = backend_slug({"backend": "replay", "tape": str(tmp_path / "a")})
        b = backend_slug({"backend": "replay", "tape": str(tmp_path / "b")})
        assert a != b


class TestParseBackendArgument:
    def test_bare_key(self):
        assert parse_backend_argument("native") == "native"
        assert parse_backend_argument("abc") == "abc"

    def test_replay_shorthand(self, tmp_path):
        tape = str(tmp_path / "t.json")
        assert parse_backend_argument(f"replay:{tape}") == {
            "backend": "replay", "tape": tape}

    def test_record_shorthand(self, tmp_path):
        tape = str(tmp_path / "t.json")
        assert parse_backend_argument(f"record:{tape}") == {
            "backend": "replay", "tape": tape, "mode": "record"}

    def test_inline_json(self, tmp_path):
        tape = str(tmp_path / "t.json")
        text = json.dumps({"backend": "replay", "tape": tape})
        assert parse_backend_argument(text) == {
            "backend": "replay", "tape": tape}


# ---------------------------------------------------------------------------
# Native backend: the bit-identity contract
# ---------------------------------------------------------------------------
class TestNativeBackend:
    def test_measure_matches_evaluator(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        backend = NativeBackend()
        record = evaluator.evaluate(["rewrite", "balance"])
        area, delay = backend.measure(
            small_adder, ("rewrite", "balance"), lut_size=6)
        assert (area, delay) == (record.area, record.delay)

    def test_empty_sequence_is_initial_stats(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        area, delay = NativeBackend().measure(small_adder, (), lut_size=6)
        assert (area, delay) == (evaluator.initial_result.area,
                                 evaluator.initial_result.delay)

    def test_namespace_is_empty(self):
        # The empty namespace is the bit-identity guarantee: native
        # evaluators keep their historical unsuffixed cache keys.
        assert NativeBackend().cache_namespace == ""

    def test_default_evaluator_uses_native(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        assert isinstance(evaluator.backend, NativeBackend)
        assert evaluator.backend_spec == "native"

    def test_native_cache_key_unsuffixed(self, small_adder):
        evaluator = QoREvaluator(small_adder)
        assert evaluator.cache_key == (
            f"{aig_fingerprint(small_adder)}:lut{evaluator.lut_size}")

    def test_available(self):
        backend = NativeBackend()
        assert backend.available()
        assert backend.availability_note() == ""


# ---------------------------------------------------------------------------
# Cache namespaces
# ---------------------------------------------------------------------------
class TestCacheNamespaces:
    def test_replay_namespace_suffixes_cache_key(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        native = QoREvaluator(small_adder)
        recorder = QoREvaluator(
            small_adder,
            backend={"backend": "replay", "tape": str(tape), "mode": "record"})
        assert recorder.cache_key == f"{native.cache_key}:replay"

    def test_namespace_ignores_tape_path(self, small_adder, tmp_path):
        # Two tapes, one namespace: the tape path is transport, not
        # measurement semantics, so rows stay shareable across tapes.
        a = ReplayBackend(tape=str(tmp_path / "a.json"), mode="record")
        b = ReplayBackend(tape=str(tmp_path / "b.json"), mode="record")
        assert a.cache_namespace == b.cache_namespace == "replay"

    def test_abc_namespace(self):
        assert ExternalABCBackend().cache_namespace == "abc"

    def test_namespaced_rows_do_not_collide(self, small_adder, tmp_path):
        from repro.engine.cache import PersistentQoRCache

        tape = tmp_path / "tape.json"
        with PersistentQoRCache(tmp_path / "cache") as cache:
            native = QoREvaluator(small_adder, persistent_cache=cache)
            native.evaluate(["balance"])
            replay = QoREvaluator(
                small_adder, persistent_cache=cache,
                backend={"backend": "replay", "tape": str(tape),
                         "mode": "record"})
            replay.evaluate(["balance"])
            # Distinct namespaces: the replay evaluator computed its own
            # row instead of inheriting the native one.
            assert replay.num_persistent_hits == 0
            assert replay.num_computed == 1


# ---------------------------------------------------------------------------
# Replay backend
# ---------------------------------------------------------------------------
class TestReplayBackend:
    def test_record_then_replay_round_trip(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        sequences = [(), ("rewrite",), ("balance", "refactor")]
        recorder = ReplayBackend(tape=str(tape), mode="record")
        recorded = [recorder.measure(small_adder, seq, 6) for seq in sequences]
        assert tape.is_file()

        replayer = ReplayBackend(tape=str(tape))
        replayed = [replayer.measure(small_adder, seq, 6) for seq in sequences]
        assert replayed == recorded

    def test_recorded_values_match_native(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        recorder = ReplayBackend(tape=str(tape), mode="record")
        assert recorder.measure(small_adder, ("rewrite",), 6) == (
            NativeBackend().measure(small_adder, ("rewrite",), 6))

    def test_tape_is_versioned_json(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        ReplayBackend(tape=str(tape), mode="record").measure(
            small_adder, ("balance",), 6)
        payload = json.loads(tape.read_text())
        assert payload["format"] == "repro-measurement-tape-v1"

    def test_missing_tape_fails_loudly(self, small_adder, tmp_path):
        backend = ReplayBackend(tape=str(tmp_path / "absent.json"))
        with pytest.raises(BackendError, match="tape"):
            backend.measure(small_adder, ("rewrite",), 6)

    def test_unrecorded_sequence_aborts(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        ReplayBackend(tape=str(tape), mode="record").measure(
            small_adder, ("rewrite",), 6)
        replayer = ReplayBackend(tape=str(tape))
        with pytest.raises(TapeMismatch, match="re-record"):
            replayer.measure(small_adder, ("balance",), 6)

    def test_wrong_circuit_aborts(self, small_adder, small_multiplier,
                                  tmp_path):
        """A tape recorded on circuit A must refuse to answer for B."""
        tape = tmp_path / "tape.json"
        ReplayBackend(tape=str(tape), mode="record").measure(
            small_adder, ("rewrite",), 6)
        replayer = ReplayBackend(tape=str(tape))
        with pytest.raises(TapeMismatch):
            replayer.measure(small_multiplier, ("rewrite",), 6)

    def test_wrong_lut_size_aborts(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        ReplayBackend(tape=str(tape), mode="record").measure(
            small_adder, ("rewrite",), 6)
        replayer = ReplayBackend(tape=str(tape))
        with pytest.raises(TapeMismatch):
            replayer.measure(small_adder, ("rewrite",), 4)

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            ReplayBackend(tape=str(tmp_path / "t.json"), mode="improvise")

    def test_evaluator_on_replay_matches_native(self, small_adder, tmp_path):
        tape = tmp_path / "tape.json"
        native = QoREvaluator(small_adder)
        record_native = native.evaluate(["rewrite", "balance"])

        recorder = QoREvaluator(
            small_adder,
            backend={"backend": "replay", "tape": str(tape), "mode": "record"})
        recorder.evaluate(["rewrite", "balance"])

        replayer = QoREvaluator(
            small_adder, backend={"backend": "replay", "tape": str(tape)})
        record_replay = replayer.evaluate(["rewrite", "balance"])
        assert record_replay.area == record_native.area
        assert record_replay.delay == record_native.delay
        assert record_replay.qor == pytest.approx(record_native.qor)
        assert replayer.reference_area == native.reference_area
        assert replayer.reference_delay == native.reference_delay


# ---------------------------------------------------------------------------
# External-ABC backend (binary-independent parts only)
# ---------------------------------------------------------------------------
class TestExternalABCBackend:
    def test_script_shape(self):
        backend = ExternalABCBackend()
        script = backend._script("/tmp/c.blif", ("rewrite", "balance"), 6)
        assert "read_blif /tmp/c.blif" in script
        assert "strash" in script
        assert "rewrite; balance" in script
        assert "if -K 6" in script
        assert script.rstrip().endswith("print_stats")

    def test_stats_parsing_takes_last_match(self):
        backend = ExternalABCBackend()
        out = ("ABC command line: ...\n"
               "top: i/o = 8/5  nd = 31  lev = 9\n"
               "top: i/o = 8/5  nd = 17  lev = 5\n")
        assert backend._parse_stats(out, script="rewrite") == (17, 5)

    def test_unparseable_stats_raise(self):
        with pytest.raises(BackendError, match="stats"):
            ExternalABCBackend()._parse_stats("no stats here", script="rewrite")

    def test_unavailable_without_binary(self, monkeypatch):
        monkeypatch.setenv("PATH", "")
        backend = ExternalABCBackend(binary="abc")
        assert not backend.available()
        assert "abc" in backend.availability_note()

    def test_params_round_trip(self):
        backend = ExternalABCBackend(binary="/opt/abc/abc", timeout=10.0,
                                     attempts=3)
        clone = resolve_backend(backend.spec())
        assert clone == backend
        assert clone.timeout == 10.0
        assert clone.attempts == 3

    def test_default_spec_is_bare_key(self):
        assert ExternalABCBackend().backend_spec == "abc"


# ---------------------------------------------------------------------------
# Problem / EvaluatorSpec integration
# ---------------------------------------------------------------------------
class TestProblemIntegration:
    def test_native_problem_key_unchanged(self):
        # Historical stores must keep resolving: the default backend
        # never appears in the key.
        assert Problem("adder", width=4).key == "adder-w4-lut6-k20"

    def test_non_native_backend_in_key(self):
        assert Problem("adder", width=4, backend="abc").key == (
            "adder-w4-lut6-k20-abc")

    def test_problem_dict_round_trip(self, tmp_path):
        problem = Problem(
            "adder", width=4, sequence_length=3,
            backend={"backend": "replay", "tape": str(tmp_path / "t.json")})
        clone = Problem.from_dict(
            json.loads(json.dumps(problem.to_dict())))
        assert clone == problem
        assert clone.key == problem.key

    def test_problem_validate_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            Problem("adder", width=4, backend="no-such-backend").validate()

    def test_spec_identity_includes_backend(self):
        native = EvaluatorSpec.for_circuit("adder", width=4)
        abc = EvaluatorSpec.for_circuit("adder", width=4, backend="abc")
        assert native.identity_key() != abc.identity_key()
        assert native.backend == DEFAULT_BACKEND_KEY
        assert abc.backend == "abc"

    def test_spec_payload_round_trip(self, tmp_path):
        spec = EvaluatorSpec.for_circuit(
            "adder", width=4,
            backend={"backend": "replay", "tape": str(tmp_path / "t.json")})
        assert EvaluatorSpec.from_payload(spec.to_payload()) == spec

    def test_legacy_payload_defaults_to_native(self):
        spec = EvaluatorSpec.for_circuit("adder", width=4)
        payload = spec.to_payload()
        del payload["backend"]  # payload written before the backend field
        assert EvaluatorSpec.from_payload(payload).backend == (
            DEFAULT_BACKEND_KEY)

    def test_spec_builds_evaluator_with_backend(self, tmp_path):
        tape = tmp_path / "tape.json"
        spec = EvaluatorSpec.for_circuit(
            "adder", width=4,
            backend={"backend": "replay", "tape": str(tape),
                     "mode": "record"})
        evaluator = spec.build_evaluator(cache=False)
        assert isinstance(evaluator.backend, ReplayBackend)
        assert evaluator.cache_key.endswith(":replay")


# ---------------------------------------------------------------------------
# Hermetic campaigns on replay (satellite: kill+resume without synthesis)
# ---------------------------------------------------------------------------
class TestReplayCampaign:
    def _problem(self, tape, **backend_extra):
        return Problem(
            "adder", width=4, sequence_length=3,
            backend={"backend": "replay", "tape": str(tape), **backend_extra})

    def _campaign(self, problem, name):
        from repro.api import Campaign

        return Campaign(problems=(problem,), methods=("rs",), seeds=(0,),
                        budget=6, name=name)

    def test_kill_and_resume_entirely_on_replay(self, tmp_path):
        """Mid-cell kill+resume of a campaign that never synthesises.

        Phase 1 records a tape with an identical campaign in record
        mode; phases 2–3 run exclusively from the tape — an interrupted
        replay run must resume to a result bit-identical to the
        uninterrupted replay run, proving the hermetic substrate covers
        the whole round-granular execution core.
        """
        from repro.api import CampaignStore, resume_campaign, run_campaign

        tape = tmp_path / "tape.json"
        recorded = run_campaign(
            self._campaign(self._problem(tape, mode="record"), "replay-rec"),
            tmp_path / "record-store")
        assert recorded[0].status == "ok"

        replay_campaign = self._campaign(self._problem(tape), "replay-run")
        full_store = CampaignStore(tmp_path / "full")
        uninterrupted = run_campaign(replay_campaign, full_store)
        assert uninterrupted[0].status == "ok"
        # Replay reproduces the recorded run exactly (same optimiser seed).
        assert uninterrupted[0].history == recorded[0].history

        class _Kill(KeyboardInterrupt):
            pass

        def killer(cell_id, event):
            if (event["kind"] == "round_completed"
                    and event["round_index"] == 1):
                raise _Kill()

        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(replay_campaign, killed, on_event=killer)
        assert killed.completed_cell_ids() == set()

        resumed = resume_campaign(killed)
        assert [r.to_dict() for r in resumed] == [
            r.to_dict() for r in uninterrupted]
        assert resumed[0].history == uninterrupted[0].history
        cell_id = replay_campaign.cells()[0].cell_id
        assert (killed.trajectory_path(cell_id).read_bytes()
                == full_store.trajectory_path(cell_id).read_bytes())

    def test_replay_campaign_fails_loudly_without_tape(self, tmp_path):
        from repro.api import run_campaign

        campaign = self._campaign(
            self._problem(tmp_path / "absent.json"), "replay-missing")
        records = run_campaign(campaign, tmp_path / "store")
        assert records[0].status == "failed"
        assert "tape" in str(records[0].metadata["error"])


# ---------------------------------------------------------------------------
# Custom backends through the registry
# ---------------------------------------------------------------------------
class TestCustomBackend:
    def test_register_resolve_and_run(self, small_adder):
        from repro.registry import register_backend

        class ConstantBackend(SynthesisBackend):
            key = "test-constant"

            def measure(self, aig, sequence, lut_size):
                return 10, 2

        register_backend("test-constant", ConstantBackend)
        try:
            evaluator = QoREvaluator(small_adder, backend="test-constant")
            record = evaluator.evaluate(["rewrite"])
            assert (record.area, record.delay) == (10, 2)
            assert evaluator.reference_area == 10
            # Custom backends get an automatic namespace from their slug.
            assert evaluator.cache_key.endswith(":test-constant")
        finally:
            BACKENDS.unregister("test-constant")
