"""Tests for the command-line interface."""

import pytest

from repro.cli import main, _parse_sequence


class TestParsing:
    def test_mnemonic_sequence(self):
        assert _parse_sequence("RwRfBl") == ["rewrite", "refactor", "balance"]

    def test_comma_separated_sequence(self):
        assert _parse_sequence("balance, rewrite") == ["balance", "rewrite"]

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError):
            _parse_sequence("Zz")


class TestCommands:
    def test_list_circuits(self, capsys):
        assert main(["list-circuits"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "multiplier" in out and "[large]" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "boils" in out and "rs" in out

    def test_stats(self, capsys):
        assert main(["stats", "--circuit", "adder", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "AND nodes" in out and "LUT-6 area" in out

    def test_evaluate_with_mnemonics(self, capsys):
        assert main(["evaluate", "--circuit", "adder", "--width", "4",
                     "--sequence", "BlRw"]) == 0
        out = capsys.readouterr().out
        assert "QoR" in out and "improvement vs resyn2" in out

    def test_evaluate_with_names(self, capsys):
        assert main(["evaluate", "--circuit", "sqrt", "--width", "6",
                     "--sequence", "balance,rewrite"]) == 0
        assert "QoR" in capsys.readouterr().out

    def test_optimise_random_search(self, capsys):
        assert main(["optimise", "--circuit", "adder", "--width", "4",
                     "--method", "rs", "--budget", "4",
                     "--sequence-length", "3"]) == 0
        out = capsys.readouterr().out
        assert "best sequence" in out and "evaluations used  : 4" in out

    def test_optimise_boils(self, capsys):
        assert main(["optimise", "--circuit", "adder", "--width", "4",
                     "--method", "boils", "--budget", "4",
                     "--sequence-length", "3"]) == 0
        assert "QoR improvement" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "--circuits", "adder", "--methods", "rs,greedy",
                     "--budget", "4", "--sequence-length", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (top)" in out and "Average" in out

    def test_unknown_circuit_returns_error_code(self, capsys):
        assert main(["stats", "--circuit", "cpu"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["optimise", "--circuit", "adder", "--method", "annealing"])
