"""Tests for the command-line interface."""

import pytest

from repro.cli import main, _parse_sequence


class TestParsing:
    def test_mnemonic_sequence(self):
        assert _parse_sequence("RwRfBl") == ["rewrite", "refactor", "balance"]

    def test_comma_separated_sequence(self):
        assert _parse_sequence("balance, rewrite") == ["balance", "rewrite"]

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(ValueError):
            _parse_sequence("Zz")


class TestCommands:
    def test_list_circuits(self, capsys):
        assert main(["list-circuits"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "multiplier" in out and "[large]" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "boils" in out and "rs" in out

    def test_stats(self, capsys):
        assert main(["stats", "--circuit", "adder", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "AND nodes" in out and "LUT-6 area" in out

    def test_evaluate_with_mnemonics(self, capsys):
        assert main(["evaluate", "--circuit", "adder", "--width", "4",
                     "--sequence", "BlRw"]) == 0
        out = capsys.readouterr().out
        assert "QoR" in out and "improvement vs resyn2" in out

    def test_evaluate_with_names(self, capsys):
        assert main(["evaluate", "--circuit", "sqrt", "--width", "6",
                     "--sequence", "balance,rewrite"]) == 0
        assert "QoR" in capsys.readouterr().out

    def test_optimise_random_search(self, capsys):
        assert main(["optimise", "--circuit", "adder", "--width", "4",
                     "--method", "rs", "--budget", "4",
                     "--sequence-length", "3"]) == 0
        out = capsys.readouterr().out
        assert "best sequence" in out and "evaluations used  : 4" in out

    def test_optimise_boils(self, capsys):
        assert main(["optimise", "--circuit", "adder", "--width", "4",
                     "--method", "boils", "--budget", "4",
                     "--sequence-length", "3"]) == 0
        assert "QoR improvement" in capsys.readouterr().out

    def test_table(self, capsys):
        assert main(["table", "--circuits", "adder", "--methods", "rs,greedy",
                     "--budget", "4", "--sequence-length", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 (top)" in out and "Average" in out

    def test_unknown_circuit_returns_error_code(self, capsys):
        assert main(["stats", "--circuit", "cpu"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["optimise", "--circuit", "adder", "--method", "annealing"])


class TestCampaignCommands:
    def test_run_inline_flags(self, capsys, tmp_path):
        assert main(["run", "--circuits", "adder", "--methods", "rs",
                     "--budget", "4", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--store", str(tmp_path / "run")]) == 0
        captured = capsys.readouterr()
        assert "Figure 3 (top)" in captured.out
        assert "repro resume" in captured.err

    def test_run_resume_show_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "run")
        assert main(["run", "--circuits", "adder", "--methods", "rs,greedy",
                     "--budget", "4", "--seeds", "2",
                     "--sequence-length", "3", "--width", "4",
                     "--store", store]) == 0
        first = capsys.readouterr().out
        # Resume of a complete store recomputes nothing and reprints the grid.
        assert main(["resume", "--store", store]) == 0
        resumed = capsys.readouterr()
        assert "Figure 3 (top)" in resumed.out
        assert resumed.err.count("[cached]") == 4
        assert resumed.out == first
        # Show lists the cells and their status.
        assert main(["show", "--store", store]) == 0
        shown = capsys.readouterr().out
        assert "4/4 complete" in shown
        assert "adder-w4-lut6-k3__rs__s0" in shown

    def test_run_from_campaign_file(self, capsys, tmp_path):
        from repro.api import Campaign, Problem

        path = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs",), seeds=(0,), budget=3, name="from-file",
        ).save(tmp_path / "campaign.json")
        assert main(["run", "--campaign", str(path)]) == 0
        assert "Figure 3 (top)" in capsys.readouterr().out

    def test_run_with_objective(self, capsys, tmp_path):
        assert main(["run", "--circuits", "adder", "--methods", "rs",
                     "--budget", "3", "--sequence-length", "3",
                     "--width", "4", "--objective", "weighted:2,1",
                     "--store", str(tmp_path / "run")]) == 0
        capsys.readouterr()
        assert main(["show", "--store", str(tmp_path / "run")]) == 0
        assert "weighted-" in capsys.readouterr().out

    def test_resume_missing_store_errors(self, capsys, tmp_path):
        assert main(["resume", "--store", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_missing_campaign_file_errors(self, capsys, tmp_path):
        assert main(["run", "--campaign", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_unknown_method_errors(self, capsys):
        assert main(["run", "--circuits", "adder", "--methods", "annealing",
                     "--budget", "3"]) == 2
        err = capsys.readouterr().err
        assert "unknown method 'annealing'" in err

    def test_list_objectives(self, capsys):
        assert main(["list-objectives"]) == 0
        out = capsys.readouterr().out
        assert "eq1" in out and "weighted" in out


class TestRoundGranularCli:
    def test_run_streams_round_progress(self, capsys, tmp_path):
        assert main(["run", "--circuits", "adder", "--methods", "ga",
                     "--budget", "4", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--store", str(tmp_path / "run")]) == 0
        err = capsys.readouterr().err
        assert "round 1" in err and "/4 evals" in err

    def test_no_round_progress_flag(self, capsys, tmp_path):
        assert main(["run", "--circuits", "adder", "--methods", "ga",
                     "--budget", "4", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--no-round-progress",
                     "--store", str(tmp_path / "run")]) == 0
        assert "round 1" not in capsys.readouterr().err

    def test_show_follow_on_complete_store_exits(self, capsys, tmp_path):
        store = str(tmp_path / "run")
        assert main(["run", "--circuits", "adder", "--methods", "rs",
                     "--budget", "3", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--store", store]) == 0
        capsys.readouterr()
        # All cells complete: --follow prints one status sweep and returns.
        assert main(["show", "--store", store, "--follow",
                     "--interval", "0.05"]) == 0
        captured = capsys.readouterr()
        assert "round(s) [done]" in captured.err
        assert "1/1 complete" in captured.out

    def test_early_stop_flag_threads_through(self, capsys, tmp_path):
        assert main(["run", "--circuits", "adder", "--methods", "ga",
                     "--budget", "50", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--early-stop-improvement", "-1000",
                     "--store", str(tmp_path / "run")]) == 0
        err = capsys.readouterr().err
        assert "early stop (stop_condition)" in err

    def test_failed_cells_yield_nonzero_exit(self, capsys, tmp_path):
        from repro.api import Campaign, Problem

        path = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs", "ga"), seeds=(0,), budget=3,
            method_overrides={"ga": {"no_such_argument": 1}},
            name="half-broken",
        ).save(tmp_path / "campaign.json")
        assert main(["run", "--campaign", str(path),
                     "--store", str(tmp_path / "run")]) == 1
        captured = capsys.readouterr()
        assert "1 cell(s) failed" in captured.err
        assert "Figure 3 (top)" in captured.out  # healthy cells still render

    def test_trajectories_written_by_cli_run(self, tmp_path):
        from repro.api import CampaignStore

        store_dir = str(tmp_path / "run")
        assert main(["run", "--circuits", "adder", "--methods", "rs",
                     "--budget", "3", "--seeds", "1",
                     "--sequence-length", "3", "--width", "4",
                     "--store", store_dir]) == 0
        store = CampaignStore(store_dir)
        cell_id = sorted(store.completed_cell_ids())[0]
        assert store.trajectory_round_count(cell_id) >= 1


class TestTableLutSize:
    def test_table_accepts_lut_size(self, capsys):
        assert main(["table", "--circuits", "adder", "--methods", "rs",
                     "--budget", "3", "--sequence-length", "3",
                     "--lut-size", "4"]) == 0
        assert "Figure 3 (top)" in capsys.readouterr().out

    def test_lut_size_reaches_the_grid(self, monkeypatch):
        captured = {}
        from repro import cli as cli_module

        def fake_run_experiment(config, progress=None, jobs=1, cache_dir=None):
            captured["config"] = config
            return []

        monkeypatch.setattr(cli_module, "run_experiment", fake_run_experiment)
        monkeypatch.setattr(cli_module, "render_figure3_table", lambda table: "")
        main(["table", "--circuits", "adder", "--methods", "rs",
              "--budget", "3", "--lut-size", "4"])
        assert captured["config"].lut_size == 4

    def test_legacy_shims_print_deprecation_note(self, capsys):
        main(["table", "--circuits", "adder", "--methods", "rs",
              "--budget", "3", "--sequence-length", "3"])
        assert "legacy shim" in capsys.readouterr().err


class TestCorpusCommands:
    def _build(self, tmp_path, capsys, count=3):
        dest = str(tmp_path / "corpus")
        assert main(["corpus", "build", "--dest", dest, "--count", str(count),
                     "--seed", "2", "--max-gates", "40"]) == 0
        capsys.readouterr()
        return dest

    def test_corpus_build_and_list(self, capsys, tmp_path):
        dest = self._build(tmp_path, capsys)
        assert main(["circuits", "list", "--corpus", dest]) == 0
        out = capsys.readouterr().out
        assert "layered-002-000" in out
        assert "ands" in out

    def test_circuits_list_without_corpus_lists_registry(self, capsys):
        assert main(["circuits", "list"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "multiplier" in out

    def test_circuits_stats_named_circuit(self, capsys):
        assert main(["circuits", "stats", "--circuit", "adder",
                     "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "AND nodes" in out and "AIG levels" in out

    def test_circuits_stats_on_file(self, capsys, tmp_path):
        from repro.aig.aiger import write_aiger
        from repro.circuits import make_adder

        path = tmp_path / "c.aag"
        write_aiger(make_adder(4), path)
        assert main(["circuits", "stats", "--circuit", str(path)]) == 0
        assert "inputs       : 8" in capsys.readouterr().out

    def test_circuits_stats_corpus_table(self, capsys, tmp_path):
        dest = self._build(tmp_path, capsys)
        assert main(["circuits", "stats", "--corpus", dest]) == 0
        assert "total: 3 circuit(s)" in capsys.readouterr().out

    def test_circuits_stats_requires_one_target(self, capsys):
        assert main(["circuits", "stats"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_circuits_import(self, capsys, tmp_path):
        from repro.aig.bench import write_bench
        from repro.circuits import make_multiplier

        dest = self._build(tmp_path, capsys)
        source = tmp_path / "ext.bench"
        write_bench(make_multiplier(3), source)
        assert main(["circuits", "import", "--corpus", dest,
                     str(source)]) == 0
        assert "imported" in capsys.readouterr().out
        assert main(["circuits", "list", "--corpus", dest]) == 0
        assert "ext" in capsys.readouterr().out

    def test_run_over_corpus_and_show_stats(self, capsys, tmp_path):
        dest = self._build(tmp_path, capsys)
        store = str(tmp_path / "run")
        assert main(["run", "--corpus", dest, "--methods", "rs",
                     "--budget", "3", "--sequence-length", "3",
                     "--store", store, "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["show", "--store", store]) == 0
        shown = capsys.readouterr().out
        assert "3/3 complete" in shown
        # Circuit stats are surfaced per problem in `repro show`.
        assert "circuits      :" in shown
        assert "pis" in shown and "levels" in shown

    def test_run_on_single_file_circuit(self, capsys, tmp_path):
        from repro.aig.aiger import write_aiger
        from repro.circuits import make_adder

        path = tmp_path / "mine.aag"
        write_aiger(make_adder(4), path)
        assert main(["run", "--circuits", f"file:{path}", "--methods", "rs",
                     "--budget", "3", "--sequence-length", "3"]) == 0
        assert "Figure 3 (top)" in capsys.readouterr().out

    def test_run_over_missing_corpus_errors(self, capsys, tmp_path):
        assert main(["run", "--corpus", str(tmp_path / "ghost"),
                     "--methods", "rs"]) == 2
        assert "not a corpus directory" in capsys.readouterr().err
