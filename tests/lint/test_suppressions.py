"""The inline suppression protocol: reasons required, staleness flagged."""

from __future__ import annotations

from repro.lint import lint_source
from repro.lint.core import SUPPRESSION_CODE, parse_module

BAD_RNG = "import random\nvalue = random.random()"


def test_trailing_suppression_with_reason_silences_the_finding():
    source = ("import random\n"
              "value = random.random()  "
              "# repro: lint-ok[RPL001] fixture: not result-affecting\n")
    assert lint_source(source, "repro/qor/x.py") == []


def test_own_line_suppression_covers_the_next_line():
    source = ("import random\n"
              "# repro: lint-ok[RPL001] fixture: not result-affecting\n"
              "value = random.random()\n")
    assert lint_source(source, "repro/qor/x.py") == []


def test_suppression_without_reason_is_reported_and_does_not_silence():
    source = ("import random\n"
              "value = random.random()  # repro: lint-ok[RPL001]\n")
    codes = sorted(d.code for d in lint_source(source, "repro/qor/x.py"))
    assert codes == [SUPPRESSION_CODE, "RPL001"]


def test_unused_suppression_is_reported():
    source = "x = 1  # repro: lint-ok[RPL001] nothing here to suppress\n"
    (diag,) = lint_source(source, "repro/qor/x.py")
    assert diag.code == SUPPRESSION_CODE
    assert "unused" in diag.message


def test_suppression_only_covers_its_own_code():
    source = ("import random\n"
              "value = random.random()  "
              "# repro: lint-ok[RPL002] wrong code entirely\n")
    codes = sorted(d.code for d in lint_source(source, "repro/qor/x.py"))
    # The finding survives and the mismatched suppression is stale.
    assert codes == [SUPPRESSION_CODE, "RPL001"]


def test_multi_code_suppression():
    source = ("import random, time\n"
              "pair = (random.random(), time.time())  "
              "# repro: lint-ok[RPL001, RPL002] fixture: both deliberate\n")
    assert lint_source(source, "repro/qor/x.py") == []


def test_suppression_comment_inside_string_literal_is_ignored():
    source = 'DOC = "# repro: lint-ok[RPL001] not a comment"\n'
    module = parse_module(source, "repro/qor/x.py")
    assert module.suppressions == []
    assert lint_source(source, "repro/qor/x.py") == []


def test_parse_module_records_comment_and_target_lines():
    source = ("# repro: lint-ok[RPL003] own-line form\n"
              "x = 1\n"
              "y = 2  # repro: lint-ok[RPL005] trailing form\n")
    module = parse_module(source, "repro/qor/x.py")
    own, trailing = module.suppressions
    assert (own.comment_line, own.target_line) == (1, 2)
    assert (trailing.comment_line, trailing.target_line) == (3, 3)
    assert own.codes == ("RPL003",)
    assert trailing.reason == "trailing form"
