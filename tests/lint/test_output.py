"""Output formats: text lines and the JSON report schema."""

from __future__ import annotations

import json

from repro.lint import (
    format_diagnostics_json,
    format_diagnostics_text,
    lint_source,
)

BAD = ("import random, time\n"
       "a = random.random()\n"
       "b = time.time()\n")


def _diagnostics():
    return lint_source(BAD, "repro/qor/x.py")


def test_text_format_lists_findings_then_summary():
    diagnostics = _diagnostics()
    text = format_diagnostics_text(diagnostics, checked=1)
    lines = text.splitlines()
    assert len(lines) == len(diagnostics) + 1
    assert lines[0].startswith("repro/qor/x.py:")
    assert lines[-1] == f"{len(diagnostics)} problem(s) in 1 file(s)"


def test_text_format_clean():
    assert format_diagnostics_text([]) == "clean"
    assert format_diagnostics_text([], checked=3) == "clean in 3 file(s)"


def test_json_schema_and_counts():
    diagnostics = _diagnostics()
    payload = json.loads(format_diagnostics_json(diagnostics, checked=1))
    assert set(payload) == {"version", "checked_files", "counts",
                            "diagnostics"}
    assert payload["version"] == 1
    assert payload["checked_files"] == 1
    assert payload["counts"] == {"RPL001": 1, "RPL002": 1}
    for entry, diag in zip(payload["diagnostics"], diagnostics):
        assert entry == {"path": diag.path, "line": diag.line,
                         "col": diag.col, "code": diag.code,
                         "message": diag.message}


def test_json_output_is_stable_and_sorted():
    diagnostics = _diagnostics()
    assert (format_diagnostics_json(diagnostics)
            == format_diagnostics_json(diagnostics))
    # Driver output arrives sorted by (path, line, col, code).
    keys = [(d.path, d.line, d.col, d.code) for d in diagnostics]
    assert keys == sorted(keys)
