"""Per-rule positive/negative behaviour of the built-in RPL pack."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, default_rules, lint_source
from repro.lint.rules import RULE_PACK

from rpl_fixtures import RULE_FIXTURES

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def _codes(diagnostics):
    return sorted({diag.code for diag in diagnostics})


@pytest.mark.parametrize("fixture", RULE_FIXTURES,
                         ids=[f.code for f in RULE_FIXTURES])
def test_bad_fixture_triggers_exactly_its_rule(fixture):
    diagnostics = lint_source(fixture.bad, fixture.bad_path,
                              source_root=SRC_ROOT)
    assert _codes(diagnostics) == [fixture.code]


@pytest.mark.parametrize("fixture", RULE_FIXTURES,
                         ids=[f.code for f in RULE_FIXTURES])
def test_good_fixture_lints_clean(fixture):
    diagnostics = lint_source(fixture.good, fixture.good_path,
                              source_root=SRC_ROOT)
    assert diagnostics == []


def test_default_rules_cover_the_whole_pack():
    codes = [rule.code for rule in default_rules()]
    assert codes == sorted(cls.code for cls in RULE_PACK)
    assert codes == [f"RPL00{i}" for i in range(1, 9)]


def test_diagnostics_carry_position_and_stable_code():
    fixture = RULE_FIXTURES[0]  # RPL001
    (diag,) = lint_source(fixture.bad, fixture.bad_path)
    assert diag.path == fixture.bad_path
    assert diag.line > 0 and diag.col >= 0
    assert diag.code == "RPL001"
    assert "Generator" in diag.message
    assert diag.format().startswith(
        f"{fixture.bad_path}:{diag.line}:{diag.col}: RPL001 ")


# ----------------------------------------------------------------------
# Rule-specific edges beyond the shared fixture pairs
# ----------------------------------------------------------------------
def test_rpl001_flags_legacy_numpy_and_bare_default_rng():
    source = (
        "import numpy as np\n"
        "def f():\n"
        "    a = np.random.rand(3)\n"
        "    rng = np.random.default_rng()\n"
        "    return a, rng\n"
    )
    diagnostics = lint_source(source, "repro/qor/x.py")
    assert [d.code for d in diagnostics] == ["RPL001", "RPL001"]


def test_rpl001_allows_seeded_generator_construction():
    source = (
        "import numpy as np\n"
        "def f(seed):\n"
        "    return np.random.Generator(np.random.PCG64(seed))\n"
    )
    assert lint_source(source, "repro/qor/x.py") == []


def test_rpl002_allowlisted_paths_are_exempt():
    source = "import time\n\ndef f():\n    return time.monotonic()\n"
    assert lint_source(source, "repro/engine/faults.py") == []
    assert lint_source(source, "repro/qor/x.py") != []


def test_rpl003_star_unpack_and_list_call():
    source = (
        "def f(items):\n"
        "    seen = set(items)\n"
        "    return list(seen), [*seen]\n"
    )
    diagnostics = lint_source(source, "repro/qor/x.py")
    assert [d.code for d in diagnostics] == ["RPL003", "RPL003"]


def test_rpl003_non_set_reassignment_disqualifies_name():
    source = (
        "def f(items):\n"
        "    seen = set(items)\n"
        "    seen = sorted(seen)\n"
        "    return [x for x in seen]\n"
    )
    assert lint_source(source, "repro/qor/x.py") == []


def test_rpl004_flags_lambda_submission_and_initializer():
    source = (
        "def run(pool):\n"
        "    pool.submit(lambda: 1)\n"
        "    make_pool(initializer=lambda: 2)\n"
    )
    diagnostics = lint_source(source, "repro/engine/x.py")
    assert [d.code for d in diagnostics] == ["RPL004", "RPL004"]


def test_rpl004_is_scoped_to_engine_and_api():
    source = "def run(pool):\n    pool.submit(lambda: 1)\n"
    assert lint_source(source, "repro/qor/x.py") == []


def test_rpl004_partial_wrapping_nested_function():
    source = (
        "from functools import partial\n"
        "def run(pool):\n"
        "    def inner():\n"
        "        return 1\n"
        "    pool.submit(partial(inner, 2))\n"
    )
    diagnostics = lint_source(source, "repro/engine/x.py")
    assert [d.code for d in diagnostics] == ["RPL004"]


def test_rpl005_payload_function_tolist_and_nonfinite():
    source = (
        "import math\n"
        "def state_dict(self):\n"
        "    return {'arr': self.arr.tolist(), 'worst': float('inf'),\n"
        "            'pad': math.inf}\n"
    )
    diagnostics = lint_source(source, "repro/qor/x.py")
    assert [d.code for d in diagnostics] == ["RPL005"] * 3


def test_rpl005_allow_nan_true_is_still_a_finding():
    source = (
        "import json\n"
        "def f(p):\n"
        "    return json.dumps(p, allow_nan=True)\n"
    )
    diagnostics = lint_source(source, "repro/qor/x.py")
    assert [d.code for d in diagnostics] == ["RPL005"]


def test_rpl006_getenv_and_environ_flagged_outside_config_layer():
    source = (
        "import os\n"
        "def f():\n"
        "    return os.getenv('REPRO_CACHE_DIR'), os.environ['HOME']\n"
    )
    diagnostics = lint_source(source, "repro/qor/x.py")
    assert {d.code for d in diagnostics} == {"RPL006"}
    assert lint_source(source, "repro/config.py") == []


def test_rpl007_function_import_from_twin_is_flagged():
    source = "from repro.aig.cuts import enumerate_cuts\n"
    diagnostics = lint_source(source, "repro/aig/_reference.py",
                              source_root=SRC_ROOT)
    assert [d.code for d in diagnostics] == ["RPL007"]


def test_rpl007_signature_drift_is_flagged():
    # The real twin enumerate_cuts takes (aig, *, k, max_cuts, ...);
    # a bare (aig) reference signature has drifted.
    source = "def enumerate_cuts_reference(aig):\n    return []\n"
    diagnostics = lint_source(source, "repro/aig/_reference.py",
                              source_root=SRC_ROOT)
    assert [d.code for d in diagnostics] == ["RPL007"]
    assert "drifted" in diagnostics[0].message


def test_rpl008_aliased_and_dotted_construction_flagged():
    source = (
        "import concurrent.futures as cf\n"
        "from concurrent.futures import ProcessPoolExecutor as PPE\n"
        "import multiprocessing\n"
        "def run(tasks):\n"
        "    a = cf.ProcessPoolExecutor(max_workers=2)\n"
        "    b = PPE()\n"
        "    c = multiprocessing.Pool(2)\n"
        "    return a, b, c\n"
    )
    diagnostics = lint_source(source, "repro/engine/x.py")
    assert [d.code for d in diagnostics] == ["RPL008"] * 3


def test_rpl008_scoped_to_engine_api_and_allowlists_warm_pool():
    source = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "def run():\n"
        "    return ProcessPoolExecutor(max_workers=2)\n"
    )
    # Outside the engine/api hot paths the rule does not apply.
    assert lint_source(source, "repro/experiments/x.py") == []
    # WarmPool's own module is the sanctioned construction site.
    assert lint_source(source, "repro/engine/pool.py") == []
    assert lint_source(source, "repro/engine/x.py") != []


def test_rpl008_local_name_shadowing_does_not_resolve():
    source = (
        "def run(ProcessPoolExecutor, tasks):\n"
        "    return ProcessPoolExecutor(tasks)\n"
    )
    assert lint_source(source, "repro/engine/x.py") == []


def test_rpl007_select_and_ignore_gate_rules():
    config = LintConfig(ignore=("RPL007",))
    source = "def mapped_reference(aig):\n    return 0\n"
    assert lint_source(source, "repro/qor/_reference.py",
                       config=config) == []
    only_rpl001 = LintConfig(select=("RPL001",))
    assert lint_source(source, "repro/qor/_reference.py",
                       config=only_rpl001) == []
