"""`repro lint` CLI: exit codes, formats, rule listing."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint.rules import RULE_PACK

CLEAN = "def double(x):\n    return 2 * x\n"
DIRTY = "import random\nvalue = random.random()\n"


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean_mod.py"
    path.write_text(CLEAN, encoding="utf-8")
    return path


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty_mod.py"
    path.write_text(DIRTY, encoding="utf-8")
    return path


def test_exit_zero_and_clean_on_clean_tree(clean_file, capsys):
    assert main(["lint", str(clean_file)]) == 0
    assert capsys.readouterr().out.strip() == "clean"


def test_exit_one_with_findings(dirty_file, capsys):
    assert main(["lint", str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert "1 problem(s)" in out


def test_json_format(dirty_file, capsys):
    assert main(["lint", "--format", "json", str(dirty_file)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["counts"] == {"RPL001": 1}
    (diag,) = payload["diagnostics"]
    assert diag["code"] == "RPL001"
    assert diag["path"].endswith("dirty_mod.py")


def test_exit_two_on_unusable_input(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "no_such_dir")]) == 2
    assert "error:" in capsys.readouterr().err


def test_exit_two_on_syntax_error(tmp_path, capsys):
    bad = tmp_path / "broken_mod.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main(["lint", str(bad)]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_list_rules_names_the_whole_pack(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in RULE_PACK:
        assert cls.code in out
        assert cls.name in out


def test_directory_lint_collects_recursively(tmp_path, capsys):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "a.py").write_text(CLEAN, encoding="utf-8")
    nested = package / "sub"
    nested.mkdir()
    (nested / "b.py").write_text(DIRTY, encoding="utf-8")
    assert main(["lint", str(package)]) == 1
    assert "RPL001" in capsys.readouterr().out
