"""Static typing gate for the process-boundary layers.

Runs mypy in the targeted-strict configuration from pyproject.toml
(``repro.engine``, ``repro.api``, ``repro.serialise``) when mypy is
installed — CI always has it via the ``test`` extra; a bare local
checkout without it skips rather than fails.  A structural fallback
check always runs: every def in the strict modules must be fully
annotated, which holds the ``disallow_untyped_defs`` line even where
mypy is absent.
"""

from __future__ import annotations

import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"
STRICT_TARGETS = [
    SRC_ROOT / "repro" / "engine",
    SRC_ROOT / "repro" / "api",
    SRC_ROOT / "repro" / "serialise.py",
]


def test_package_ships_py_typed_marker():
    assert (SRC_ROOT / "repro" / "py.typed").is_file()


def test_strict_modules_have_fully_annotated_defs():
    """disallow_untyped_defs, statically: every def fully annotated."""
    problems = []
    files = [p for target in STRICT_TARGETS
             for p in ([target] if target.is_file()
                       else sorted(target.rglob("*.py")))]
    assert files
    for path in files:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = node.args
            every = (args.posonlyargs + args.args + args.kwonlyargs
                     + ([args.vararg] if args.vararg else [])
                     + ([args.kwarg] if args.kwarg else []))
            missing = [a.arg for a in every
                       if a.arg not in ("self", "cls")
                       and a.annotation is None]
            if node.returns is None:
                missing.append("return")
            if missing:
                rel = path.relative_to(REPO_ROOT)
                problems.append(
                    f"{rel}:{node.lineno} {node.name}: {missing}")
    assert not problems, "\n".join(problems)


@pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                    reason="mypy not installed (CI installs it via the "
                           "test extra)")
def test_mypy_targeted_strict_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy",
         "-p", "repro.engine", "-p", "repro.api", "-m", "repro.serialise"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
