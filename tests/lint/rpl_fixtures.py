"""Per-rule positive/negative fixture snippets for the lint suite.

Each entry pairs a *bad* snippet that must trigger exactly its rule with
a *good* snippet that must lint clean, at a virtual package-relative
path chosen so path-restricted rules (RPL004) and the allowlists
(RPL002/RPL006) behave as they would inside the real tree.

The meta-test (tests/lint/test_meta.py) reuses the bad snippets to
prove each rule still bites when its violation is seeded into a virtual
``repro/...`` module linted under the *shipped* pyproject config.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class RuleFixture:
    code: str
    bad: str
    bad_path: str
    good: str
    good_path: str


def _src(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip()


RULE_FIXTURES: Tuple[RuleFixture, ...] = (
    RuleFixture(
        code="RPL001",
        bad=_src("""
            import random

            def shuffle_ops(ops):
                random.shuffle(ops)
                return ops
        """),
        bad_path="repro/qor/fixture_rpl001.py",
        good=_src("""
            import numpy as np

            def draw(rng: np.random.Generator, seed: int) -> float:
                child = np.random.default_rng(seed)
                return rng.random() + child.random()
        """),
        good_path="repro/qor/fixture_rpl001.py",
    ),
    RuleFixture(
        code="RPL002",
        bad=_src("""
            import time

            def stamp_result(record):
                record["at"] = time.time()
                return record
        """),
        bad_path="repro/qor/fixture_rpl002.py",
        good=_src("""
            import time

            def backoff(seconds: float) -> None:
                time.sleep(seconds)
        """),
        good_path="repro/qor/fixture_rpl002.py",
    ),
    RuleFixture(
        code="RPL003",
        bad=_src("""
            def ordered(items):
                seen = {name for name in items}
                return [name for name in seen]
        """),
        bad_path="repro/qor/fixture_rpl003.py",
        good=_src("""
            def ordered(items):
                seen = {name for name in items}
                return [name for name in sorted(seen)]
        """),
        good_path="repro/qor/fixture_rpl003.py",
    ),
    RuleFixture(
        code="RPL004",
        bad=_src("""
            class WorkerLostError(Exception):
                def __init__(self, cell_id, seconds):
                    super().__init__(f"{cell_id} lost after {seconds}s")
                    self.cell_id = cell_id
        """),
        bad_path="repro/engine/fixture_rpl004.py",
        good=_src("""
            class WorkerLostError(Exception):
                def __init__(self, cell_id, seconds):
                    super().__init__(f"{cell_id} lost after {seconds}s")
                    self.cell_id = cell_id
                    self.seconds = seconds

                def __reduce__(self):
                    return (WorkerLostError, (self.cell_id, self.seconds))
        """),
        good_path="repro/engine/fixture_rpl004.py",
    ),
    RuleFixture(
        code="RPL005",
        bad=_src("""
            import json

            def checkpoint_line(payload):
                return json.dumps(payload, sort_keys=True)
        """),
        bad_path="repro/qor/fixture_rpl005.py",
        good=_src("""
            import json

            def checkpoint_line(payload):
                return json.dumps(payload, sort_keys=True, allow_nan=False)
        """),
        good_path="repro/qor/fixture_rpl005.py",
    ),
    RuleFixture(
        code="RPL006",
        bad=_src("""
            import os

            def width_scale() -> str:
                return os.environ.get("REPRO_WIDTH_SCALE", "1.0")
        """),
        bad_path="repro/qor/fixture_rpl006.py",
        good=_src("""
            from repro.config import env_width_scale

            def width_scale() -> float:
                return env_width_scale()
        """),
        good_path="repro/qor/fixture_rpl006.py",
    ),
    RuleFixture(
        code="RPL007",
        # A frozen reference module with no reference-twins entry.
        bad=_src("""
            def mapped_area_reference(aig):
                return 0
        """),
        bad_path="repro/qor/_reference.py",
        # Importing a shared data type (class) from the declared twin is
        # the one legal cross-import.
        good=_src("""
            from repro.aig.cuts import Cut

            def _helper(cut: Cut) -> int:
                return len(cut.leaves)
        """),
        good_path="repro/aig/_reference.py",
    ),
    RuleFixture(
        code="RPL008",
        bad=_src("""
            from concurrent.futures import ProcessPoolExecutor

            def score_batch(tasks):
                with ProcessPoolExecutor(max_workers=2) as pool:
                    return list(pool.map(len, tasks))
        """),
        bad_path="repro/engine/fixture_rpl008.py",
        good=_src("""
            from repro.engine.pool import WarmPool

            def score_batch(pool: WarmPool, tasks):
                return list(pool.executor().map(len, tasks))
        """),
        good_path="repro/engine/fixture_rpl008.py",
    ),
)
