"""Meta-tests: the shipped tree lints clean and the pack provably bites.

Three guarantees the acceptance bar asks for, stated as tests:

* ``repro lint src/repro`` is clean — a regression in any rule (or any
  fresh violation) fails CI;
* every inline suppression in the tree is load-bearing: deleting it
  makes the linter complain again (so the suppression inventory can
  never go stale silently);
* seeding any rule's negative fixture into a virtual ``repro/...``
  module makes the lint fail — the rules still bite under the shipped
  configuration.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.core import (
    DEFAULT_ALLOW,
    DEFAULT_REFERENCE_TWINS,
    find_pyproject,
    parse_module,
)

from rpl_fixtures import RULE_FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"
PACKAGE = SRC_ROOT / "repro"

_SUPPRESSION_LINE_RE = re.compile(r"#\s*repro:\s*lint-ok\[.*$")


def _shipped_config() -> LintConfig:
    return LintConfig.from_pyproject(REPO_ROOT / "pyproject.toml")


def _tree_suppressions():
    """Every (file, suppression) pair in the shipped package."""
    found = []
    for path in sorted(PACKAGE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(SRC_ROOT).as_posix()
        module = parse_module(path.read_text(encoding="utf-8"), rel)
        for suppression in module.suppressions:
            found.append((path, rel, suppression))
    return found


def test_shipped_package_lints_clean():
    assert lint_paths([PACKAGE]) == []


def test_tree_has_suppressions_to_exercise():
    # Guards the next test against vacuity: the tree is expected to
    # carry at least the bo/base.py RPL002 and api/run.py RPL004 sites.
    codes = {code for _, _, s in _tree_suppressions() for code in s.codes}
    assert {"RPL002", "RPL004"} <= codes


@pytest.mark.parametrize(
    "path,rel,suppression",
    _tree_suppressions(),
    ids=[f"{rel}:{s.comment_line}" for _, rel, s in _tree_suppressions()],
)
def test_every_suppression_is_load_bearing(path, rel, suppression):
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    index = suppression.comment_line - 1
    stripped = _SUPPRESSION_LINE_RE.sub("", lines[index]).rstrip() + "\n"
    lines[index] = stripped
    diagnostics = lint_source("".join(lines), rel,
                              config=_shipped_config(),
                              source_root=SRC_ROOT)
    assert diagnostics, (
        f"deleting the suppression at {rel}:{suppression.comment_line} "
        "produced no finding — the comment is stale and must be removed")
    assert any(d.code in suppression.codes for d in diagnostics)


@pytest.mark.parametrize("fixture", RULE_FIXTURES,
                         ids=[f.code for f in RULE_FIXTURES])
def test_seeded_violation_fails_under_shipped_config(fixture):
    diagnostics = lint_source(fixture.bad, fixture.bad_path,
                              config=_shipped_config(),
                              source_root=SRC_ROOT)
    assert fixture.code in {d.code for d in diagnostics}


def test_builtin_defaults_match_shipped_pyproject():
    """Python 3.10 (no tomllib) must lint identically to 3.11+."""
    tomllib = pytest.importorskip("tomllib")
    data = tomllib.loads(
        (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8"))
    table = data["tool"]["repro"]["lint"]
    parsed = LintConfig.from_table(table)
    assert dict(parsed.allow) == DEFAULT_ALLOW
    assert dict(parsed.reference_twins) == DEFAULT_REFERENCE_TWINS


def test_every_declared_twin_exists_and_parses():
    for reference, twin in DEFAULT_REFERENCE_TWINS.items():
        assert (SRC_ROOT / reference).is_file(), reference
        assert (SRC_ROOT / twin).is_file(), twin


def test_find_pyproject_resolves_from_package_dir():
    assert find_pyproject(PACKAGE) == REPO_ROOT / "pyproject.toml"
