"""Lint rules flow through the repro.registry entry-point mechanism."""

from __future__ import annotations

import pytest

from repro.lint import LintRule, default_rules
from repro.lint.rules import RULE_PACK
from repro.registry import LINT_RULES, RegistryError, register_lint_rule


def test_builtin_pack_is_registered_by_code():
    for cls in RULE_PACK:
        assert LINT_RULES.get(cls.code) is cls


def test_entry_point_group_name():
    assert LINT_RULES.entry_point_group == "repro.lint_rules"


def test_register_requires_a_code():
    class Anonymous(LintRule):
        code = ""

    with pytest.raises(RegistryError, match="non-empty"):
        register_lint_rule(Anonymous)


def test_duplicate_code_rejected_without_replace():
    class Imposter(LintRule):
        code = "RPL001"

    with pytest.raises(RegistryError):
        register_lint_rule(Imposter)
    assert LINT_RULES.get("RPL001") is not Imposter


def test_registered_rule_is_picked_up_by_default_rules():
    class LocalRule(LintRule):
        code = "TST901"
        name = "test-only"
        rationale = "registered by the test suite"

        def check(self, module, context):
            return []

    register_lint_rule(LocalRule)
    try:
        codes = [rule.code for rule in default_rules()]
        assert "TST901" in codes
        # default_rules instantiates classes and sorts by code.
        assert codes == sorted(codes)
    finally:
        LINT_RULES.unregister("TST901")
