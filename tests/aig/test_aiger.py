"""Tests for AIGER reading and writing."""

import pytest

from repro.aig.aiger import (
    AigerError,
    read_aiger,
    read_aiger_string,
    write_aiger,
    write_aiger_string,
)
from repro.aig.graph import AIG
from repro.aig.simulation import functionally_equivalent, simulate
from repro.circuits import make_adder


class TestAsciiRoundtrip:
    def test_roundtrip_preserves_function(self, small_adder):
        text = write_aiger_string(small_adder)
        parsed = read_aiger_string(text)
        assert functionally_equivalent(small_adder, parsed)

    def test_roundtrip_preserves_shape(self, small_adder):
        parsed = read_aiger_string(write_aiger_string(small_adder))
        assert parsed.num_pis == small_adder.num_pis
        assert parsed.num_pos == small_adder.num_pos

    def test_header_counts(self, small_adder):
        text = write_aiger_string(small_adder)
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == small_adder.num_pis
        assert int(header[4]) == small_adder.num_pos

    def test_symbols_roundtrip(self):
        aig = AIG()
        a = aig.add_pi("alpha")
        b = aig.add_pi("beta")
        aig.add_po(aig.add_and(a, b), name="gamma")
        parsed = read_aiger_string(write_aiger_string(aig))
        assert parsed.node(parsed.pis[0]).name == "alpha"
        assert parsed.po_names == ["gamma"]


class TestBinaryRoundtrip:
    def test_roundtrip_preserves_function(self, small_adder):
        data = write_aiger_string(small_adder, binary=True)
        assert isinstance(data, bytes)
        parsed = read_aiger_string(data)
        assert functionally_equivalent(small_adder, parsed)

    def test_binary_header(self, small_multiplier):
        data = write_aiger_string(small_multiplier, binary=True)
        assert data.splitlines()[0].startswith(b"aig ")

    def test_binary_roundtrip_multiplier(self, small_multiplier):
        parsed = read_aiger_string(write_aiger_string(small_multiplier, binary=True))
        assert functionally_equivalent(small_multiplier, parsed)


class TestFileIO:
    def test_write_read_aag(self, tmp_path, small_adder):
        path = tmp_path / "adder.aag"
        write_aiger(small_adder, path)
        parsed = read_aiger(path)
        assert functionally_equivalent(small_adder, parsed)

    def test_write_read_binary(self, tmp_path, small_adder):
        path = tmp_path / "adder.aig"
        write_aiger(small_adder, path)
        parsed = read_aiger(path)
        assert functionally_equivalent(small_adder, parsed)

    def test_read_uses_stem_as_name(self, tmp_path, small_adder):
        path = tmp_path / "mydesign.aag"
        write_aiger(small_adder, path)
        assert read_aiger(path).name == "mydesign"


class TestKnownEncodings:
    def test_and_gate_aag(self):
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"
        aig = read_aiger_string(text)
        assert aig.num_pis == 2
        assert aig.num_ands == 1
        assert simulate(aig, [1, 1]) == [1]
        assert simulate(aig, [1, 0]) == [0]

    def test_inverter_output(self):
        text = "aag 1 1 0 1 0\n2\n3\n"
        aig = read_aiger_string(text)
        assert simulate(aig, [0]) == [1]
        assert simulate(aig, [1]) == [0]

    def test_constant_output(self):
        text = "aag 0 0 0 1 0\n1\n"
        aig = read_aiger_string(text)
        assert simulate(aig, []) == [1]


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(AigerError):
            read_aiger_string("not an aiger file")

    def test_latches_rejected(self):
        with pytest.raises(AigerError):
            read_aiger_string("aag 3 1 1 1 0\n2\n4 2\n4\n")

    def test_truncated_header(self):
        with pytest.raises(AigerError):
            read_aiger_string("aag 3 2\n")
