"""Tests for AIGER reading and writing."""

import pytest

from repro.aig.aiger import (
    AigerError,
    read_aiger,
    read_aiger_string,
    write_aiger,
    write_aiger_string,
)
from repro.aig.graph import AIG
from repro.aig.simulation import functionally_equivalent, simulate
from repro.circuits import make_adder


class TestAsciiRoundtrip:
    def test_roundtrip_preserves_function(self, small_adder):
        text = write_aiger_string(small_adder)
        parsed = read_aiger_string(text)
        assert functionally_equivalent(small_adder, parsed)

    def test_roundtrip_preserves_shape(self, small_adder):
        parsed = read_aiger_string(write_aiger_string(small_adder))
        assert parsed.num_pis == small_adder.num_pis
        assert parsed.num_pos == small_adder.num_pos

    def test_header_counts(self, small_adder):
        text = write_aiger_string(small_adder)
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == small_adder.num_pis
        assert int(header[4]) == small_adder.num_pos

    def test_symbols_roundtrip(self):
        aig = AIG()
        a = aig.add_pi("alpha")
        b = aig.add_pi("beta")
        aig.add_po(aig.add_and(a, b), name="gamma")
        parsed = read_aiger_string(write_aiger_string(aig))
        assert parsed.node(parsed.pis[0]).name == "alpha"
        assert parsed.po_names == ["gamma"]


class TestBinaryRoundtrip:
    def test_roundtrip_preserves_function(self, small_adder):
        data = write_aiger_string(small_adder, binary=True)
        assert isinstance(data, bytes)
        parsed = read_aiger_string(data)
        assert functionally_equivalent(small_adder, parsed)

    def test_binary_header(self, small_multiplier):
        data = write_aiger_string(small_multiplier, binary=True)
        assert data.splitlines()[0].startswith(b"aig ")

    def test_binary_roundtrip_multiplier(self, small_multiplier):
        parsed = read_aiger_string(write_aiger_string(small_multiplier, binary=True))
        assert functionally_equivalent(small_multiplier, parsed)


class TestFileIO:
    def test_write_read_aag(self, tmp_path, small_adder):
        path = tmp_path / "adder.aag"
        write_aiger(small_adder, path)
        parsed = read_aiger(path)
        assert functionally_equivalent(small_adder, parsed)

    def test_write_read_binary(self, tmp_path, small_adder):
        path = tmp_path / "adder.aig"
        write_aiger(small_adder, path)
        parsed = read_aiger(path)
        assert functionally_equivalent(small_adder, parsed)

    def test_read_uses_stem_as_name(self, tmp_path, small_adder):
        path = tmp_path / "mydesign.aag"
        write_aiger(small_adder, path)
        assert read_aiger(path).name == "mydesign"


class TestKnownEncodings:
    def test_and_gate_aag(self):
        text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"
        aig = read_aiger_string(text)
        assert aig.num_pis == 2
        assert aig.num_ands == 1
        assert simulate(aig, [1, 1]) == [1]
        assert simulate(aig, [1, 0]) == [0]

    def test_inverter_output(self):
        text = "aag 1 1 0 1 0\n2\n3\n"
        aig = read_aiger_string(text)
        assert simulate(aig, [0]) == [1]
        assert simulate(aig, [1]) == [0]

    def test_constant_output(self):
        text = "aag 0 0 0 1 0\n1\n"
        aig = read_aiger_string(text)
        assert simulate(aig, []) == [1]


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(AigerError):
            read_aiger_string("not an aiger file")

    def test_latches_rejected(self):
        with pytest.raises(AigerError):
            read_aiger_string("aag 3 1 1 1 0\n2\n4 2\n4\n")

    def test_truncated_header(self):
        with pytest.raises(AigerError):
            read_aiger_string("aag 3 2\n")


class TestMalformedInputs:
    """Hand-crafted malformed files must raise, never mis-build silently."""

    # A valid 1-AND binary file to mutate: x0 & x1 -> one output.
    @staticmethod
    def _binary_base() -> bytes:
        from repro.aig.graph import AIG

        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.add_and(a, b))
        return write_aiger_string(aig, binary=True)  # type: ignore[return-value]

    def test_truncated_binary_and_section(self):
        data = self._binary_base()
        header_end = data.index(b"\n", data.index(b"\n") + 1) + 1
        with pytest.raises(AigerError, match="binary|truncated|unexpected end"):
            read_aiger_string(data[:header_end])  # AND bytes missing entirely

    def test_binary_and_section_cut_mid_varint(self):
        import io as _io

        from repro.aig.aiger import _write_delta

        # Build a legitimate delta stream, then drop its last byte.
        header = "aig 130 1 0 1 129\n260\n"
        buf = _io.BytesIO()
        for i in range(129):
            lhs = 2 * (2 + i)
            _write_delta(buf, lhs - 2)
            _write_delta(buf, 0)
        payload = header.encode() + buf.getvalue()[:-1]
        with pytest.raises(AigerError):
            read_aiger_string(payload)

    def test_binary_and_section_absorbing_symbol_bytes_detected(self):
        """Missing AND bytes must not be silently parsed from the symbol table."""
        data = b"aig 2 1 0 1 1\n4\ni0 name_of_input_zero\nc\n"
        with pytest.raises(AigerError):
            read_aiger_string(data)

    def test_binary_header_count_mismatch(self):
        with pytest.raises(AigerError, match="M=9"):
            read_aiger_string(b"aig 9 1 0 1 1\n4\n\x02\x02")

    def test_duplicate_input_symbol_entry(self):
        text = "aag 1 1 0 1 0\n2\n2\ni0 first\ni0 second\n"
        with pytest.raises(AigerError, match="duplicate symbol"):
            read_aiger_string(text)

    def test_duplicate_output_symbol_entry(self):
        text = "aag 1 1 0 2 0\n2\n2\n2\no0 first\no0 second\n"
        with pytest.raises(AigerError, match="duplicate symbol"):
            read_aiger_string(text)

    def test_duplicate_input_literal(self):
        with pytest.raises(AigerError, match="duplicate input"):
            read_aiger_string("aag 3 2 0 1 1\n2\n2\n6\n6 2 2\n")

    def test_duplicate_and_definition(self):
        with pytest.raises(AigerError, match="duplicate definition"):
            read_aiger_string("aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 2 5\n")

    def test_and_redefining_an_input(self):
        with pytest.raises(AigerError, match="duplicate"):
            read_aiger_string("aag 3 2 0 1 1\n2\n4\n2\n4 2 3\n")

    def test_forward_fanin_reference(self):
        # AND 6 uses variable 4, which is defined *after* it.
        with pytest.raises(AigerError, match="not defined"):
            read_aiger_string("aag 4 1 0 1 2\n2\n6\n6 8 2\n8 2 2\n")

    def test_fanin_beyond_max_var(self):
        with pytest.raises(AigerError, match="beyond the declared maximum"):
            read_aiger_string("aag 3 2 0 1 1\n2\n4\n6\n6 2 40\n")

    def test_output_beyond_max_var(self):
        with pytest.raises(AigerError, match="exceeds the declared maximum"):
            read_aiger_string("aag 3 2 0 1 1\n2\n4\n60\n6 2 4\n")

    def test_truncated_ascii_outputs(self):
        with pytest.raises(AigerError, match="missing output"):
            read_aiger_string("aag 3 2 0 2 1\n2\n4\n6\n")

    def test_truncated_ascii_and_section(self):
        with pytest.raises(AigerError, match="truncated AND"):
            read_aiger_string("aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n")

    def test_odd_input_literal(self):
        with pytest.raises(AigerError, match="invalid input literal"):
            read_aiger_string("aag 2 1 0 1 0\n3\n2\n")

    def test_negative_count_header(self):
        with pytest.raises(AigerError, match="negative"):
            read_aiger_string("aag 3 -1 0 1 1\n")

    def test_valid_constant_propagation_still_parses(self):
        """The hardening must not reject legal AND-of-constant files."""
        # 4 = x1 & 0 (constant false), output is var 4 complemented.
        aig = read_aiger_string("aag 2 1 0 1 1\n2\n5\n4 2 0\n")
        assert simulate(aig, [0]) == [1]
        assert simulate(aig, [1]) == [1]
