"""Tests of the ISCAS ``.bench`` reader / writer."""

import pytest

from repro.aig.bench import (
    BenchError,
    read_bench,
    read_bench_string,
    write_bench,
    write_bench_string,
)
from repro.aig.graph import AIG
from repro.aig.simulation import exhaustive_output_tables, functionally_equivalent, simulate


class TestRoundTrip:
    def test_adder_roundtrip(self, small_adder):
        parsed = read_bench_string(write_bench_string(small_adder))
        assert functionally_equivalent(small_adder, parsed)
        assert parsed.num_pis == small_adder.num_pis
        assert parsed.num_pos == small_adder.num_pos

    def test_sqrt_roundtrip(self, small_sqrt):
        parsed = read_bench_string(write_bench_string(small_sqrt))
        assert functionally_equivalent(small_sqrt, parsed)

    def test_file_roundtrip(self, tmp_path, small_multiplier):
        path = tmp_path / "mult.bench"
        write_bench(small_multiplier, path)
        parsed = read_bench(path)
        assert parsed.name == "mult"
        assert functionally_equivalent(small_multiplier, parsed)

    def test_constant_and_inverted_outputs(self):
        aig = AIG(name="edge")
        a = aig.add_pi("a")
        aig.add_po(1, name="one")
        aig.add_po(0, name="zero")
        aig.add_po(a ^ 1, name="na")
        parsed = read_bench_string(write_bench_string(aig))
        assert exhaustive_output_tables(parsed) == exhaustive_output_tables(aig)


class TestReader:
    def test_gate_zoo(self):
        text = """
# a small gate zoo
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
t1 = AND(a, b, c)
t2 = NOR(a, b)
t3 = XOR(t1, t2, c)
t4 = NAND(t3, c)
t5 = XNOR(t4, a)
t6 = BUFF(t5)
f = NOT(t6)
"""
        aig = read_bench_string(text)
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            a, b, c = bits
            t1 = a & b & c
            t2 = int(not (a | b))
            t3 = t1 ^ t2 ^ c
            t4 = int(not (t3 & c))
            t5 = int(not (t4 ^ a))
            expected = int(not t5)
            assert simulate(aig, bits) == [expected], bits

    def test_out_of_order_definitions(self):
        text = ("INPUT(a)\nINPUT(b)\nOUTPUT(f)\n"
                "f = AND(t, b)\nt = OR(a, b)\n")
        aig = read_bench_string(text)
        assert simulate(aig, [1, 1]) == [1]
        assert simulate(aig, [1, 0]) == [0]

    def test_constant_gates(self):
        text = ("INPUT(a)\nOUTPUT(f)\nOUTPUT(g)\n"
                "one = VDD()\nzero = GND()\n"
                "f = AND(a, one)\ng = OR(a, zero)\n")
        aig = read_bench_string(text)
        assert simulate(aig, [1]) == [1, 1]
        assert simulate(aig, [0]) == [0, 0]

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(f)\nf = and(a, a)\n"
        aig = read_bench_string(text)
        assert simulate(aig, [1]) == [1]


class TestErrors:
    def test_dff_rejected(self):
        with pytest.raises(BenchError, match="sequential"):
            read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_unknown_gate(self):
        with pytest.raises(BenchError, match="unknown gate"):
            read_bench_string("INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n")

    def test_unparseable_line(self):
        with pytest.raises(BenchError, match="cannot parse"):
            read_bench_string("INPUT(a)\nOUTPUT(f)\nf = AND(a\n")

    def test_undefined_signal(self):
        with pytest.raises(BenchError, match="never defined"):
            read_bench_string("INPUT(a)\nOUTPUT(f)\nf = AND(a, ghost)\n")

    def test_cycle(self):
        with pytest.raises(BenchError, match="cycle"):
            read_bench_string("INPUT(a)\nOUTPUT(f)\n"
                              "f = AND(a, g)\ng = AND(a, f)\n")

    def test_duplicate_definition(self):
        with pytest.raises(BenchError, match="more than once"):
            read_bench_string("INPUT(a)\nOUTPUT(f)\n"
                              "f = AND(a, a)\nf = OR(a, a)\n")

    def test_not_arity(self):
        with pytest.raises(BenchError, match="between 1 and 1"):
            read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = NOT(a, b)\n")

    def test_no_outputs(self):
        with pytest.raises(BenchError, match="OUTPUT"):
            read_bench_string("INPUT(a)\nf = NOT(a)\n")
