"""Tests for k-feasible cut enumeration and cut truth tables."""

import pytest

from repro.aig import truth
from repro.aig.cuts import Cut, cut_cone_vars, cut_truth_table, cut_volume, enumerate_cuts
from repro.aig.graph import AIG, lit_var


@pytest.fixture()
def and_tree():
    """A 4-input AND tree: ((a&b) & (c&d))."""
    aig = AIG()
    a, b, c, d = (aig.add_pi() for _ in range(4))
    ab = aig.add_and(a, b)
    cd = aig.add_and(c, d)
    root = aig.add_and(ab, cd)
    aig.add_po(root)
    return aig, [lit_var(x) for x in (a, b, c, d)], lit_var(root)


class TestCutObject:
    def test_merge_within_limit(self):
        assert Cut((1, 2)).merge(Cut((2, 3)), 3) == Cut((1, 2, 3))

    def test_merge_exceeding_limit(self):
        assert Cut((1, 2)).merge(Cut((3, 4)), 3) is None

    def test_dominates(self):
        assert Cut((1, 2)).dominates(Cut((1, 2, 3)))
        assert not Cut((1, 4)).dominates(Cut((1, 2, 3)))

    def test_size(self):
        assert Cut((1, 2, 3)).size == 3


class TestEnumeration:
    def test_pi_has_trivial_cut_only(self, and_tree):
        aig, pis, _ = and_tree
        cuts = enumerate_cuts(aig, k=4)
        assert cuts[pis[0]] == [Cut((pis[0],))]

    def test_root_has_full_cut(self, and_tree):
        aig, pis, root = and_tree
        cuts = enumerate_cuts(aig, k=4)
        assert Cut(tuple(sorted(pis))) in cuts[root]

    def test_trivial_cut_first_when_included(self, and_tree):
        aig, _, root = and_tree
        cuts = enumerate_cuts(aig, k=4, include_trivial=True)
        assert cuts[root][0] == Cut((root,))

    def test_trivial_cut_absent_when_excluded(self, and_tree):
        aig, _, root = and_tree
        cuts = enumerate_cuts(aig, k=4, include_trivial=False)
        assert Cut((root,)) not in cuts[root]

    def test_cut_sizes_respect_k(self, small_adder):
        cuts = enumerate_cuts(small_adder, k=4)
        for node_cuts in cuts.values():
            for cut in node_cuts:
                assert cut.size <= 4

    def test_max_cuts_respected(self, small_adder):
        cuts = enumerate_cuts(small_adder, k=6, max_cuts=3, include_trivial=False)
        for node_cuts in cuts.values():
            assert len(node_cuts) <= 3

    def test_deep_nodes_still_have_cuts(self, small_sqrt):
        """Regression: deep carry chains must keep non-trivial cuts."""
        cuts = enumerate_cuts(small_sqrt, k=6, include_trivial=False)
        for node in small_sqrt.and_nodes():
            assert cuts[node.var], f"node {node.var} lost all cuts"

    def test_depth_priority_changes_selection(self, small_adder):
        plain = enumerate_cuts(small_adder, k=6, max_cuts=2, include_trivial=False)
        depth_aware = enumerate_cuts(
            small_adder, k=6, max_cuts=2, include_trivial=False,
            depths=small_adder.levels(),
        )
        assert plain.keys() == depth_aware.keys()


class TestConeAndTruthTables:
    def test_cone_vars_of_root_cut(self, and_tree):
        aig, pis, root = and_tree
        cone = cut_cone_vars(aig, root, Cut(tuple(sorted(pis))))
        assert root in cone
        assert len(cone) == 3  # the three AND nodes

    def test_cut_volume(self, and_tree):
        aig, pis, root = and_tree
        assert cut_volume(aig, root, Cut(tuple(sorted(pis)))) == 3

    def test_truth_table_of_and_tree(self, and_tree):
        aig, pis, root = and_tree
        table = cut_truth_table(aig, root, Cut(tuple(sorted(pis))))
        expected = truth.table_mask(4) & (
            truth.var_table(0, 4) & truth.var_table(1, 4)
            & truth.var_table(2, 4) & truth.var_table(3, 4)
        )
        assert table == expected

    def test_truth_table_matches_simulation(self, small_multiplier):
        from repro.aig.simulation import node_signatures
        import numpy as np

        cuts = enumerate_cuts(small_multiplier, k=4, include_trivial=False)
        # Verify a handful of cut truth tables by simulating the cone.
        checked = 0
        for node in small_multiplier.and_nodes():
            for cut in cuts[node.var][:1]:
                if cut.size < 2:
                    continue
                table = cut_truth_table(small_multiplier, node.var, cut)
                # Check every leaf minterm explicitly through the table of
                # cofactors: the function must depend only on cut leaves.
                assert 0 <= table <= truth.table_mask(cut.size)
                checked += 1
            if checked > 10:
                break
        assert checked > 0

    def test_invalid_cut_raises(self, and_tree):
        aig, pis, root = and_tree
        with pytest.raises(ValueError):
            cut_truth_table(aig, root, Cut((pis[0],)))
