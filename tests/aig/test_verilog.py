"""Tests for the Verilog exporters.

Without a Verilog simulator in the environment, correctness is checked by
re-parsing the emitted ``assign`` network with a small expression
evaluator and comparing its behaviour against AIG simulation on random
input patterns.
"""

import re

import numpy as np
import pytest

from repro.aig.graph import AIG
from repro.aig.simulation import simulate
from repro.aig.verilog import (
    lut_verilog_module,
    verilog_module,
    write_lut_verilog,
    write_verilog,
)
from repro.circuits import make_adder, make_square_root
from repro.mapping import map_aig


def _evaluate_verilog(text: str, input_values: dict) -> dict:
    """Tiny structural-Verilog interpreter for the subset we emit."""
    inputs = re.findall(r"input\s+wire\s+(\w+)", text)
    outputs = re.findall(r"output\s+wire\s+(\w+)", text)
    assigns = re.findall(r"assign\s+(\w+)\s*=\s*(.+?);", text)
    values = {"1'b0": 0, "1'b1": 1}
    for name in inputs:
        values[name] = int(input_values[name])

    def eval_expr(expr: str) -> int:
        expr = expr.strip().replace("1'b0", "0").replace("1'b1", "1")
        # `~x` must bind tighter than & and |, so rewrite it as `(1^x)`.
        python_expr = re.sub(r"~\s*(\w+)", r"(1^\1)", expr)
        local = dict(values)
        local["__builtins__"] = {}
        return int(eval(python_expr, local)) & 1  # noqa: S307 - controlled input

    remaining = list(assigns)
    progress = True
    while remaining and progress:
        progress = False
        still = []
        for target, expr in remaining:
            identifiers = set(re.findall(r"[A-Za-z_]\w*", expr))
            if identifiers <= set(values):
                values[target] = eval_expr(expr)
                progress = True
            else:
                still.append((target, expr))
        remaining = still
    assert not remaining, f"unresolved assigns: {remaining}"
    return {name: values[name] for name in outputs}


@pytest.fixture(scope="module")
def adder():
    return make_adder(3)


class TestGateLevelVerilog:
    def test_module_structure(self, adder):
        text = verilog_module(adder, module_name="adder3")
        assert text.startswith("module adder3 (")
        assert text.rstrip().endswith("endmodule")
        assert text.count("input  wire") == adder.num_pis
        assert text.count("output wire") == adder.num_pos

    def test_behaviour_matches_simulation(self, adder, rng):
        text = verilog_module(adder)
        inputs = re.findall(r"input\s+wire\s+(\w+)", text)
        outputs = re.findall(r"output\s+wire\s+(\w+)", text)
        for _ in range(10):
            bits = rng.integers(0, 2, size=adder.num_pis)
            expected = simulate(adder, list(bits))
            got = _evaluate_verilog(text, dict(zip(inputs, bits)))
            assert [got[name] for name in outputs] == expected

    def test_write_to_file(self, tmp_path, adder):
        path = tmp_path / "adder.v"
        write_verilog(adder, path)
        assert "module" in path.read_text()

    def test_name_sanitisation(self):
        aig = AIG(name="my design!")
        a = aig.add_pi("in[0]")
        aig.add_po(a, name="1out")
        text = verilog_module(aig)
        assert "in_0_" in text and "n_1out" in text
        assert "[" not in text.split("(")[1].split(")")[0]

    def test_constant_output(self):
        aig = AIG()
        aig.add_pi("a")
        aig.add_po(1, name="one")
        text = verilog_module(aig)
        assert "assign one = 1'b1;" in text


class TestLutVerilog:
    def test_lut_netlist_matches_simulation(self, rng):
        aig = make_square_root(5)
        mapping = map_aig(aig, lut_size=4)
        text = lut_verilog_module(aig, mapping)
        inputs = re.findall(r"input\s+wire\s+(\w+)", text)
        outputs = re.findall(r"output\s+wire\s+(\w+)", text)
        for _ in range(8):
            bits = rng.integers(0, 2, size=aig.num_pis)
            expected = simulate(aig, list(bits))
            got = _evaluate_verilog(text, dict(zip(inputs, bits)))
            assert [got[name] for name in outputs] == expected

    def test_one_assign_per_lut(self, adder):
        mapping = map_aig(adder, lut_size=6)
        text = lut_verilog_module(adder, mapping)
        lut_assigns = [line for line in text.splitlines()
                       if line.strip().startswith("assign n")]
        assert len(lut_assigns) == mapping.area

    def test_write_to_file(self, tmp_path, adder):
        mapping = map_aig(adder)
        path = tmp_path / "adder_luts.v"
        write_lut_verilog(adder, mapping, path)
        assert "_luts" in path.read_text()
