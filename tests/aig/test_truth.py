"""Tests for truth-table utilities, NPN canonicalisation and ISOP."""

import pytest

from repro.aig import truth


class TestBasics:
    def test_table_mask(self):
        assert truth.table_mask(1) == 0b11
        assert truth.table_mask(2) == 0xF
        assert truth.table_mask(3) == 0xFF

    def test_var_table_values(self):
        # x0 over 2 vars: minterms 1 and 3.
        assert truth.var_table(0, 2) == 0b1010
        # x1 over 2 vars: minterms 2 and 3.
        assert truth.var_table(1, 2) == 0b1100

    def test_var_table_out_of_range(self):
        with pytest.raises(ValueError):
            truth.var_table(3, 2)

    def test_const_table(self):
        assert truth.const_table(True, 2) == 0xF
        assert truth.const_table(False, 2) == 0

    def test_not_and_or_xor(self):
        x0 = truth.var_table(0, 2)
        x1 = truth.var_table(1, 2)
        assert truth.tt_and(x0, x1) == 0b1000
        assert truth.tt_or(x0, x1) == 0b1110
        assert truth.tt_xor(x0, x1) == 0b0110
        assert truth.tt_not(x0, 2) == 0b0101

    def test_count_ones_and_minterms(self):
        x0 = truth.var_table(0, 3)
        assert truth.count_ones(x0, 3) == 4
        assert truth.minterms(0b1000, 2) == [3]


class TestCofactorsAndSupport:
    def test_cofactor_of_projection(self):
        x0 = truth.var_table(0, 2)
        assert truth.cofactor(x0, 2, 0, 1) == truth.table_mask(2)
        assert truth.cofactor(x0, 2, 0, 0) == 0

    def test_depends_on(self):
        x0 = truth.var_table(0, 3)
        assert truth.depends_on(x0, 3, 0)
        assert not truth.depends_on(x0, 3, 1)

    def test_support_of_and(self):
        t = truth.tt_and(truth.var_table(0, 3), truth.var_table(2, 3))
        assert truth.support(t, 3) == [0, 2]

    def test_support_of_constant_is_empty(self):
        assert truth.support(0, 3) == []
        assert truth.support(truth.table_mask(3), 3) == []


class TestManipulation:
    def test_expand_table_preserves_function(self):
        x0 = truth.var_table(0, 2)
        expanded = truth.expand_table(x0, 2, 4)
        assert expanded == truth.var_table(0, 4)

    def test_expand_table_rejects_shrink(self):
        with pytest.raises(ValueError):
            truth.expand_table(0b1010, 2, 1)

    def test_permute_identity(self):
        t = 0b0110_1001
        assert truth.permute_table(t, 3, [0, 1, 2]) == t

    def test_permute_swap(self):
        x0 = truth.var_table(0, 2)
        swapped = truth.permute_table(x0, 2, [1, 0])
        assert swapped == truth.var_table(1, 2)

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            truth.permute_table(0b1010, 2, [0, 0])

    def test_flip_input(self):
        x0 = truth.var_table(0, 2)
        assert truth.flip_input(x0, 2, 0) == truth.tt_not(x0, 2)
        # Flipping an input the function ignores leaves it unchanged.
        assert truth.flip_input(x0, 2, 1) == x0


class TestNpn:
    def test_and_or_same_class(self):
        """AND and OR are NPN-equivalent (complement inputs and output)."""
        t_and = truth.tt_and(truth.var_table(0, 2), truth.var_table(1, 2))
        t_or = truth.tt_or(truth.var_table(0, 2), truth.var_table(1, 2))
        assert truth.npn_class_key(t_and, 2) == truth.npn_class_key(t_or, 2)

    def test_xor_not_in_and_class(self):
        t_and = truth.tt_and(truth.var_table(0, 2), truth.var_table(1, 2))
        t_xor = truth.tt_xor(truth.var_table(0, 2), truth.var_table(1, 2))
        assert truth.npn_class_key(t_and, 2) != truth.npn_class_key(t_xor, 2)

    def test_canonical_is_stable_under_input_permutation(self):
        t = truth.tt_and(truth.var_table(0, 3), truth.tt_or(
            truth.var_table(1, 3), truth.var_table(2, 3)))
        permuted = truth.permute_table(t, 3, [2, 0, 1])
        assert truth.npn_class_key(t, 3) == truth.npn_class_key(permuted, 3)

    def test_canonical_is_stable_under_output_complement(self):
        t = truth.tt_xor(truth.var_table(0, 2), truth.var_table(1, 2))
        assert truth.npn_class_key(t, 2) == truth.npn_class_key(truth.tt_not(t, 2), 2)


class TestIsop:
    @pytest.mark.parametrize("table,num_vars", [
        (0b1000, 2),            # AND
        (0b0110, 2),            # XOR
        (0b1110, 2),            # OR
        (0b0110_1001, 3),       # 3-input XOR
        (0b1111_1000, 3),       # majority-ish
        (0b0000_0000, 3),       # constant 0
        (0b1111_1111, 3),       # constant 1
    ])
    def test_isop_covers_exactly(self, table, num_vars):
        cover = truth.isop(table, table, num_vars)
        assert truth.sop_table(cover, num_vars) == table & truth.table_mask(num_vars)

    def test_isop_uses_dont_cares(self):
        on = 0b1000
        upper = 0b1010  # minterm 1 is a don't care
        cover = truth.isop(on, upper, 2)
        result = truth.sop_table(cover, 2)
        assert result & on == on           # covers the on-set
        assert result & ~upper & 0xF == 0  # stays inside the upper bound

    def test_cube_table_and_literal_count(self):
        cube = (0b01, 0b10)  # x0 & ~x1
        assert truth.cube_table(cube, 2) == 0b0010
        assert truth.cube_literal_count(cube) == 2

    def test_isop_random_functions(self):
        import random

        rnd = random.Random(7)
        for num_vars in (3, 4):
            for _ in range(25):
                table = rnd.getrandbits(1 << num_vars)
                cover = truth.isop(table, table, num_vars)
                assert truth.sop_table(cover, num_vars) == table
