"""Unit tests for the core AIG data structure."""

import pytest

from repro.aig.graph import (
    AIG,
    CONST0,
    CONST1,
    lit,
    lit_is_compl,
    lit_not,
    lit_regular,
    lit_var,
)


class TestLiteralHelpers:
    def test_lit_roundtrip(self):
        assert lit(3) == 6
        assert lit(3, True) == 7
        assert lit_var(7) == 3
        assert lit_is_compl(7) is True
        assert lit_is_compl(6) is False

    def test_lit_not_is_involution(self):
        assert lit_not(lit_not(10)) == 10
        assert lit_not(4) == 5

    def test_lit_regular_strips_complement(self):
        assert lit_regular(9) == 8
        assert lit_regular(8) == 8

    def test_constants(self):
        assert CONST0 == 0
        assert CONST1 == 1
        assert lit_not(CONST0) == CONST1


class TestConstruction:
    def test_empty_graph_has_only_constant(self):
        aig = AIG()
        assert aig.num_vars == 1
        assert aig.num_pis == 0
        assert aig.num_ands == 0
        assert aig.node(0).is_const

    def test_add_pi_returns_positive_literal(self):
        aig = AIG()
        a = aig.add_pi("a")
        assert not lit_is_compl(a)
        assert aig.is_pi(lit_var(a))
        assert aig.node(lit_var(a)).name == "a"

    def test_add_and_creates_node(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        y = aig.add_and(a, b)
        assert aig.num_ands == 1
        assert aig.fanins(lit_var(y)) == (min(a, b), max(a, b))

    def test_add_po_registers_output(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(a, name="out")
        assert aig.num_pos == 1
        assert aig.pos == [a]
        assert aig.po_names == ["out"]

    def test_set_po_redirects(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        idx = aig.add_po(a)
        aig.set_po(idx, b)
        assert aig.pos[0] == b

    def test_invalid_literal_rejected(self):
        aig = AIG()
        a = aig.add_pi()
        with pytest.raises(ValueError):
            aig.add_and(a, 999)
        with pytest.raises(ValueError):
            aig.add_po(999)

    def test_fanins_of_non_and_rejected(self):
        aig = AIG()
        a = aig.add_pi()
        with pytest.raises(ValueError):
            aig.fanins(lit_var(a))


class TestStructuralHashing:
    def test_duplicate_and_is_shared(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        y1 = aig.add_and(a, b)
        y2 = aig.add_and(b, a)
        assert y1 == y2
        assert aig.num_ands == 1

    def test_constant_propagation_zero(self):
        aig = AIG()
        a = aig.add_pi()
        assert aig.add_and(a, CONST0) == CONST0

    def test_constant_propagation_one(self):
        aig = AIG()
        a = aig.add_pi()
        assert aig.add_and(a, CONST1) == a

    def test_idempotence(self):
        aig = AIG()
        a = aig.add_pi()
        assert aig.add_and(a, a) == a

    def test_complementary_inputs_give_zero(self):
        aig = AIG()
        a = aig.add_pi()
        assert aig.add_and(a, lit_not(a)) == CONST0


class TestDerivedGates:
    def test_or_via_demorgan(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        y = aig.add_or(a, b)
        # OR of two PIs needs exactly one AND node.
        assert aig.num_ands == 1
        assert lit_is_compl(y)

    def test_xor_structure(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.add_xor(a, b))
        assert aig.num_ands == 3

    def test_mux_selects(self):
        from repro.aig.simulation import simulate

        aig = AIG()
        s, t, e = aig.add_pi(), aig.add_pi(), aig.add_pi()
        aig.add_po(aig.add_mux(s, t, e))
        assert simulate(aig, [1, 1, 0]) == [1]
        assert simulate(aig, [1, 0, 1]) == [0]
        assert simulate(aig, [0, 1, 0]) == [0]
        assert simulate(aig, [0, 0, 1]) == [1]

    def test_maj_is_majority(self):
        from repro.aig.simulation import simulate

        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        aig.add_po(aig.add_maj(a, b, c))
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            expected = int(sum(bits) >= 2)
            assert simulate(aig, bits) == [expected]

    def test_multi_and_empty_is_true(self):
        aig = AIG()
        assert aig.add_and_multi([]) == CONST1

    def test_multi_or_matches_any(self):
        from repro.aig.simulation import simulate

        aig = AIG()
        pis = [aig.add_pi() for _ in range(5)]
        aig.add_po(aig.add_or_multi(pis))
        assert simulate(aig, [0, 0, 0, 0, 0]) == [0]
        assert simulate(aig, [0, 0, 1, 0, 0]) == [1]


class TestAnalysis:
    def test_levels_and_depth(self):
        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_po(abc)
        levels = aig.levels()
        assert levels[lit_var(ab)] == 1
        assert levels[lit_var(abc)] == 2
        assert aig.depth() == 2

    def test_depth_no_outputs_is_zero(self):
        aig = AIG()
        aig.add_pi()
        assert aig.depth() == 0

    def test_fanout_counts_include_pos(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        y = aig.add_and(a, b)
        aig.add_po(y)
        aig.add_po(y)
        counts = aig.fanout_counts()
        assert counts[lit_var(y)] == 2
        assert counts[lit_var(a)] == 1

    def test_reachable_excludes_dangling(self):
        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        used = aig.add_and(a, b)
        aig.add_and(b, c)  # dangling
        aig.add_po(used)
        reachable = set(aig.reachable_vars())
        assert lit_var(used) in reachable
        assert aig.num_ands == 2
        assert len([v for v in reachable if aig.is_and(v)]) == 1

    def test_stats_keys(self, small_adder):
        stats = small_adder.stats()
        assert set(stats) == {"pis", "pos", "ands", "levels"}
        assert stats["pis"] == 8
        assert stats["pos"] == 5


class TestCopyAndCleanup:
    def test_cleanup_removes_dangling(self):
        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        aig.add_and(b, c)  # dangling
        aig.add_po(aig.add_and(a, b))
        clean = aig.cleanup()
        assert clean.num_ands == 1
        assert clean.num_pis == 3  # PIs are always preserved

    def test_copy_preserves_function(self, small_adder):
        from repro.aig.simulation import functionally_equivalent

        assert functionally_equivalent(small_adder, small_adder.copy())

    def test_copy_preserves_names(self):
        aig = AIG()
        a = aig.add_pi("in0")
        aig.add_po(a, name="out0")
        copy = aig.copy()
        assert copy.node(copy.pis[0]).name == "in0"
        assert copy.po_names == ["out0"]
