"""Tests for AIG simulation."""

import numpy as np
import pytest

from repro.aig.graph import AIG, lit_not
from repro.aig.simulation import (
    exhaustive_output_tables,
    functionally_equivalent,
    node_signatures,
    random_simulation,
    simulate,
    simulate_words,
)
from repro.circuits import make_adder


class TestScalarSimulation:
    def test_adder_matches_integer_arithmetic(self, small_adder):
        width = 4
        for a in range(16):
            for b in range(16):
                bits = [(a >> i) & 1 for i in range(width)] + \
                       [(b >> i) & 1 for i in range(width)]
                out = simulate(small_adder, bits)
                value = sum(bit << i for i, bit in enumerate(out))
                assert value == a + b

    def test_wrong_input_count_rejected(self, small_adder):
        with pytest.raises(ValueError):
            simulate(small_adder, [0, 1])

    def test_inverted_output(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(lit_not(a))
        assert simulate(aig, [0]) == [1]
        assert simulate(aig, [1]) == [0]


class TestWordSimulation:
    def test_matches_scalar_simulation(self, small_multiplier, rng):
        n = small_multiplier.num_pis
        patterns = rng.integers(0, 2, size=(16, n))
        words = np.zeros((n, 1), dtype=np.uint64)
        for p, pattern in enumerate(patterns):
            for i, bit in enumerate(pattern):
                if bit:
                    words[i, 0] |= np.uint64(1) << np.uint64(p)
        word_out = simulate_words(small_multiplier, words)
        for p, pattern in enumerate(patterns):
            expected = simulate(small_multiplier, list(pattern))
            got = [(int(word_out[o, 0]) >> p) & 1 for o in range(small_multiplier.num_pos)]
            assert got == expected

    def test_shape(self, small_adder):
        words = np.zeros((small_adder.num_pis, 3), dtype=np.uint64)
        out = simulate_words(small_adder, words)
        assert out.shape == (small_adder.num_pos, 3)

    def test_wrong_rows_rejected(self, small_adder):
        with pytest.raises(ValueError):
            simulate_words(small_adder, np.zeros((2, 1), dtype=np.uint64))

    def test_node_signatures_cover_all_vars(self, small_adder):
        sigs = node_signatures(small_adder, np.zeros((small_adder.num_pis, 1), dtype=np.uint64))
        assert sigs.shape[0] == small_adder.num_vars

    def test_random_simulation_deterministic_given_rng(self, small_adder):
        a = random_simulation(small_adder, num_words=2, rng=np.random.default_rng(5))
        b = random_simulation(small_adder, num_words=2, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestExhaustiveTables:
    def test_xor_chain_table(self, xor_chain):
        tables = exhaustive_output_tables(xor_chain)
        assert tables == [0b1001_0110]

    def test_limit_enforced(self):
        aig = AIG()
        for _ in range(17):
            aig.add_pi()
        aig.add_po(1)
        with pytest.raises(ValueError):
            exhaustive_output_tables(aig)


class TestEquivalence:
    def test_identical_graphs_equivalent(self, small_adder):
        assert functionally_equivalent(small_adder, small_adder.copy())

    def test_different_outputs_not_equivalent(self):
        a = AIG()
        x, y = a.add_pi(), a.add_pi()
        a.add_po(a.add_and(x, y))
        b = AIG()
        x, y = b.add_pi(), b.add_pi()
        b.add_po(b.add_or(x, y))
        assert not functionally_equivalent(a, b)

    def test_interface_mismatch(self):
        a = AIG()
        a.add_pi()
        a.add_po(1)
        b = AIG()
        b.add_pi()
        b.add_pi()
        b.add_po(1)
        assert not functionally_equivalent(a, b)

    def test_large_circuit_uses_random_check(self):
        big = make_adder(10)  # 20 inputs > exhaustive limit of 12
        assert functionally_equivalent(big, big.copy(), exhaustive_limit=12)
