"""Tests of the BLIF reader / writer."""

import pytest

from repro.aig.blif import BlifError, read_blif, read_blif_string, write_blif, write_blif_string
from repro.aig.graph import AIG
from repro.aig.simulation import exhaustive_output_tables, functionally_equivalent, simulate


class TestRoundTrip:
    def test_adder_roundtrip(self, small_adder):
        parsed = read_blif_string(write_blif_string(small_adder))
        assert functionally_equivalent(small_adder, parsed)
        assert parsed.num_pis == small_adder.num_pis
        assert parsed.num_pos == small_adder.num_pos

    def test_multiplier_roundtrip(self, small_multiplier):
        parsed = read_blif_string(write_blif_string(small_multiplier))
        assert functionally_equivalent(small_multiplier, parsed)

    def test_names_roundtrip(self, xor_chain):
        parsed = read_blif_string(write_blif_string(xor_chain))
        assert [parsed.node(v).name for v in parsed.pis] == ["a", "b", "c"]
        assert parsed.po_names == ["y"]

    def test_file_roundtrip(self, tmp_path, small_adder):
        path = tmp_path / "adder.blif"
        write_blif(small_adder, path)
        parsed = read_blif(path)
        assert parsed.name == small_adder.name  # .model wins over the stem
        assert functionally_equivalent(small_adder, parsed)

    def test_constant_and_buffer_outputs(self):
        aig = AIG(name="edge")
        a = aig.add_pi("a")
        aig.add_po(1, name="one")
        aig.add_po(0, name="zero")
        aig.add_po(a ^ 1, name="na")
        aig.add_po(a, name="buf")
        parsed = read_blif_string(write_blif_string(aig))
        assert exhaustive_output_tables(parsed) == exhaustive_output_tables(aig)


class TestReader:
    def test_sop_cover_semantics(self):
        text = """
.model cover
.inputs a b c
.outputs f
.names a b c f
1-1 1
01- 1
.end
"""
        aig = read_blif_string(text)
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            a, b, c = bits
            expected = int((a and c) or ((not a) and b))
            assert simulate(aig, bits) == [expected], bits

    def test_offset_cover_inverts(self):
        text = ".model m\n.inputs a\n.outputs f\n.names a f\n1 0\n.end\n"
        aig = read_blif_string(text)
        assert simulate(aig, [0]) == [1]
        assert simulate(aig, [1]) == [0]

    def test_constant_covers(self):
        text = (".model m\n.inputs a\n.outputs one zero\n"
                ".names one\n1\n.names zero\n.end\n")
        aig = read_blif_string(text)
        assert simulate(aig, [0]) == [1, 0]

    def test_out_of_order_definitions(self):
        text = """
.model ooo
.inputs a b
.outputs f
.names t1 t2 f
11 1
.names a b t2
01 1
.names a b t1
10 1
.end
"""
        aig = read_blif_string(text)
        assert simulate(aig, [1, 1]) == [0]

    def test_continuation_lines(self):
        text = (".model m\n.inputs a \\\nb\n.outputs f\n"
                ".names a b \\\nf\n11 1\n.end\n")
        aig = read_blif_string(text)
        assert aig.num_pis == 2
        assert simulate(aig, [1, 1]) == [1]

    def test_comment_line_inside_continuation(self):
        """A comment-only physical line must not terminate a continuation."""
        text = (".model m\n.inputs a b \\\n# interleaved comment\nc\n"
                ".outputs f\n.names a b c f\n111 1\n.end\n")
        aig = read_blif_string(text)
        assert aig.num_pis == 3
        assert simulate(aig, [1, 1, 1]) == [1]

    def test_comments_stripped(self):
        text = ("# leading comment\n.model m # trailing\n.inputs a\n"
                ".outputs f\n.names a f # buffer\n1 1\n.end\n")
        aig = read_blif_string(text)
        assert simulate(aig, [1]) == [1]


class TestErrors:
    def test_latch_rejected(self):
        with pytest.raises(BlifError, match="latch"):
            read_blif_string(".model m\n.inputs a\n.outputs f\n"
                             ".latch a f 0\n.end\n")

    def test_subckt_rejected(self):
        with pytest.raises(BlifError, match="subckt"):
            read_blif_string(".model m\n.inputs a\n.outputs f\n"
                             ".subckt sub x=a y=f\n.end\n")

    def test_undefined_output(self):
        with pytest.raises(BlifError, match="never defined"):
            read_blif_string(".model m\n.inputs a\n.outputs nope\n.end\n")

    def test_combinational_cycle(self):
        text = (".model m\n.inputs a\n.outputs f\n.names f a g\n11 1\n"
                ".names g a f\n11 1\n.end\n")
        with pytest.raises(BlifError, match="cycle"):
            read_blif_string(text)

    def test_duplicate_definition(self):
        text = (".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n"
                ".names a f\n0 1\n.end\n")
        with pytest.raises(BlifError, match="more than once"):
            read_blif_string(text)

    def test_cover_row_width_mismatch(self):
        with pytest.raises(BlifError, match="columns"):
            read_blif_string(".model m\n.inputs a b\n.outputs f\n"
                             ".names a b f\n1 1\n.end\n")

    def test_cover_row_outside_names(self):
        with pytest.raises(BlifError, match="outside"):
            read_blif_string(".model m\n.inputs a\n.outputs f\n11 1\n.end\n")

    def test_mixed_on_off_set(self):
        text = (".model m\n.inputs a b\n.outputs f\n.names a b f\n"
                "11 1\n00 0\n.end\n")
        with pytest.raises(BlifError, match="mixes"):
            read_blif_string(text)

    def test_no_outputs(self):
        with pytest.raises(BlifError, match="outputs"):
            read_blif_string(".model m\n.inputs a\n.end\n")
