"""End-to-end fault recovery for the campaign driver and CLI.

The headline guarantee under test: a campaign running under an injected
fault plan (worker crashes, hangs, transient cache errors) completes
with records *bit-identical* to a fault-free run, because every retry
resumes the cell from its last checkpoint.  Unrecoverable inputs are
quarantined — distinct from failed — and skipped on resume.

Backoff sleeps are injected as recorders and hangs are bounded by the
deadline machinery itself, so no assertion waits on wall-clock sleeps.
"""

import dataclasses
import json
import threading

import pytest

from repro import cli
from repro.api import (
    Campaign,
    CampaignStore,
    PoolUnrecoverableError,
    Problem,
    RunRecord,
    resume_campaign,
    run_campaign,
)
from repro.engine.faults import FaultEvent, FaultPlan, RetryPolicy


def _no_sleep(_seconds: float) -> None:
    pass


ZERO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _campaign(methods=("rs",), seeds=(0,), budget=4, *, eval_timeout=None,
              cell_timeout=None):
    base = Campaign(
        problems=(Problem("adder", width=4, sequence_length=3),),
        methods=methods, seeds=seeds, budget=budget, name="ft")
    if eval_timeout is None and cell_timeout is None:
        return base
    return dataclasses.replace(base, eval_timeout=eval_timeout,
                               cell_timeout=cell_timeout)


def _cell_ids(campaign):
    return [cell.cell_id for cell in campaign.validate().resolved().cells()]


def _assert_bit_identical(records, clean, context=""):
    assert len(records) == len(clean)
    for got, want in zip(records, clean):
        assert got.status == want.status == "ok", context
        assert got.to_dict() == want.to_dict(), (
            f"recovered record for {got.cell_id} differs from the "
            f"fault-free run {context}")


class TestRecoveryBitIdentical:
    def test_crash_hang_cache_error_jobs2(self, tmp_path):
        """The acceptance scenario: all three fault kinds at jobs=2."""
        campaign = _campaign(methods=("rs", "ga"), seeds=(0, 1), budget=6,
                             eval_timeout=1.5)
        ids = _cell_ids(campaign)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", cell=ids[0], attempt=0, at=2),
            FaultEvent(kind="hang", cell=ids[1], attempt=0, at=1,
                       duration=60.0),
            FaultEvent(kind="cache_error", cell=ids[2], attempt=0, at=0),
        ), seed=7)
        messages = []
        records = run_campaign(
            campaign, tmp_path / "faulted", jobs=2, retry=ZERO_BACKOFF,
            fault_plan=plan, cache_dir=str(tmp_path / "cache-faulted"),
            sleep=_no_sleep, progress=messages.append)
        # The injected faults must actually have fired: at least the
        # crashed and hung cells went through the retry path.
        assert sum("retry" in message for message in messages) >= 2, messages
        clean = run_campaign(
            campaign, tmp_path / "clean", jobs=2,
            cache_dir=str(tmp_path / "cache-clean"))
        _assert_bit_identical(records, clean)

    def test_serial_crash_recovery(self, tmp_path):
        campaign = _campaign(budget=4)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", cell=_cell_ids(campaign)[0],
                       attempt=0, at=2),))
        records = run_campaign(campaign, tmp_path / "faulted", jobs=1,
                               retry=ZERO_BACKOFF, fault_plan=plan,
                               sleep=_no_sleep)
        clean = run_campaign(campaign, tmp_path / "clean", jobs=1)
        _assert_bit_identical(records, clean)

    def test_serial_cell_timeout_recovery(self, tmp_path):
        campaign = _campaign(budget=4, cell_timeout=1.0)
        plan = FaultPlan(events=(
            FaultEvent(kind="hang", cell=_cell_ids(campaign)[0],
                       attempt=0, at=1, duration=60.0),))
        records = run_campaign(campaign, tmp_path / "faulted", jobs=1,
                               retry=ZERO_BACKOFF, fault_plan=plan,
                               sleep=_no_sleep)
        clean = run_campaign(campaign, tmp_path / "clean", jobs=1)
        _assert_bit_identical(records, clean)

    def test_seeded_random_plan_recovers(self, tmp_path, fault_seed):
        """CI rotates ``--fault-seed``; any failure names its seed."""
        campaign = _campaign(methods=("rs",), seeds=(0, 1), budget=6,
                             eval_timeout=1.0)
        plan = FaultPlan.random(fault_seed, _cell_ids(campaign),
                                hang_duration=60.0)
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0,
                             max_pool_rebuilds=8)
        records = run_campaign(
            campaign, tmp_path / "faulted", jobs=2, retry=policy,
            fault_plan=plan, cache_dir=str(tmp_path / "cache"),
            sleep=_no_sleep)
        clean = run_campaign(campaign, tmp_path / "clean", jobs=2)
        _assert_bit_identical(
            records, clean,
            context=f"(reproduce with --fault-seed={fault_seed})")


class TestQuarantine:
    def _poison_plan(self, cell_id, attempts=4):
        # Crash on every attempt the retry budget allows: unrecoverable.
        return FaultPlan(events=tuple(
            FaultEvent(kind="crash", cell=cell_id, attempt=attempt,
                       at=0, count=10_000)
            for attempt in range(attempts)))

    def test_poison_cell_is_quarantined_with_metadata(self, tmp_path):
        campaign = _campaign(seeds=(0, 1), budget=4)
        ids = _cell_ids(campaign)
        store = tmp_path / "runs"
        records = run_campaign(campaign, store, jobs=1, retry=ZERO_BACKOFF,
                               fault_plan=self._poison_plan(ids[0]),
                               sleep=_no_sleep)
        assert [record.status for record in records] == ["quarantined", "ok"]
        bad = records[0]
        assert bad.quarantined and not bad.failed and not bad.ok
        assert bad.metadata["attempts"] == ZERO_BACKOFF.max_attempts
        assert "InjectedCrash" in bad.metadata["error"]
        quarantine = bad.metadata["quarantine"]
        assert quarantine["seed"] == 0
        assert set(quarantine) == {"circuit_hash", "sequence", "seed"}
        assert CampaignStore(store).quarantined_cell_ids() == {ids[0]}

    def test_resume_skips_quarantined_until_opted_in(self, tmp_path):
        campaign = _campaign(seeds=(0, 1), budget=4)
        ids = _cell_ids(campaign)
        store = tmp_path / "runs"
        run_campaign(campaign, store, jobs=1, retry=ZERO_BACKOFF,
                     fault_plan=self._poison_plan(ids[0]), sleep=_no_sleep)

        messages = []
        records = resume_campaign(store, jobs=1, progress=messages.append,
                                  sleep=_no_sleep)
        assert records[0].quarantined  # untouched
        assert any("quarantined (skipped)" in message for message in messages)

        # Opting back in (fault plan gone) recovers the cell, and the
        # result matches a never-faulted campaign exactly.
        records = resume_campaign(store, jobs=1, retry_quarantined=True,
                                  sleep=_no_sleep)
        clean = run_campaign(campaign, tmp_path / "clean", jobs=1)
        _assert_bit_identical(records, clean)


class TestUnrecoverablePool:
    def test_pool_that_keeps_dying_raises(self, tmp_path):
        campaign = _campaign(methods=("rs",), seeds=(0, 1), budget=4)
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", attempt=attempt, at=0, count=10_000)
            for attempt in range(6)))
        policy = RetryPolicy(max_attempts=10, backoff_base=0.0, jitter=0.0,
                             max_pool_rebuilds=1)
        with pytest.raises(PoolUnrecoverableError):
            run_campaign(campaign, tmp_path / "runs", jobs=2, retry=policy,
                         fault_plan=plan, sleep=_no_sleep)


class TestCliExitCodes:
    BASE = ["run", "--circuits", "adder", "--width", "4", "--methods", "rs",
            "--budget", "2", "--sequence-length", "3", "--retry-backoff", "0",
            "--no-round-progress"]

    def test_success_exits_zero(self, capsys):
        assert cli.main([*self.BASE, "--seeds", "0"]) == 0
        capsys.readouterr()

    def test_quarantined_cell_exits_one(self, tmp_path, capsys):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", attempt=0, at=0, count=10_000),
            FaultEvent(kind="crash", attempt=1, at=0, count=10_000),
        ))
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        code = cli.main([*self.BASE, "--seeds", "0", "--jobs", "1",
                         "--store", str(tmp_path / "runs"),
                         "--fault-plan", str(plan_file),
                         "--max-attempts", "2"])
        assert code == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "--retry-quarantined" in err
        # `show` on the stored campaign surfaces the quarantined status.
        show = cli.main(["show", "--store", str(tmp_path / "runs")])
        assert show == 0
        assert "quarantined" in capsys.readouterr().out

    def test_infrastructure_failure_exits_two(self, tmp_path, capsys):
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", attempt=attempt, at=0, count=10_000)
            for attempt in range(6)))
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        code = cli.main([*self.BASE, "--seeds", "0,1", "--jobs", "2",
                         "--fault-plan", str(plan_file),
                         "--max-attempts", "10", "--pool-rebuilds", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_fault_plan_env_var(self, tmp_path, capsys, monkeypatch):
        campaign = _campaign(budget=2)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", cell=_cell_ids(campaign)[0],
                       attempt=0, at=0),))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        # The injected crash is recovered (attempt 1 is clean): exit 0.
        assert cli.main([*self.BASE, "--seeds", "0"]) == 0
        capsys.readouterr()


class TestTornRecords:
    def test_torn_record_reads_as_unfinished_and_reruns(self, tmp_path):
        campaign = _campaign(budget=3)
        store_path = tmp_path / "runs"
        records = run_campaign(campaign, store_path, jobs=1)
        cell_id = records[0].cell_id
        store = CampaignStore(store_path)
        assert store.record_status(cell_id) == "ok"

        pristine = store.cell_path(cell_id).read_bytes()
        store.cell_path(cell_id).write_bytes(pristine[:len(pristine) // 2])
        assert store.record_status(cell_id) is None
        assert store.cell_statuses() == {}

        resumed = resume_campaign(store_path, jobs=1)
        assert resumed[0].to_dict() == records[0].to_dict()
        assert store.cell_path(cell_id).read_bytes() == pristine

    def test_empty_and_missing_records_read_as_none(self, tmp_path):
        campaign = _campaign(budget=2)
        store = CampaignStore(tmp_path / "runs")
        store.initialise(campaign)
        cell_id = _cell_ids(campaign)[0]
        assert store.record_status(cell_id) is None
        store.cells_dir.mkdir(parents=True, exist_ok=True)
        store.cell_path(cell_id).write_text("")
        assert store.record_status(cell_id) is None
        store.cell_path(cell_id).write_text("{invalid json\n")
        assert store.record_status(cell_id) is None


class TestShowFollow:
    def _ok_record(self, cell, budget):
        return RunRecord(
            cell_id=cell.cell_id, problem_key=cell.problem.key,
            method=cell.method, method_display=cell.method,
            circuit=cell.problem.circuit, seed=cell.seed, budget=budget,
            objective="eq1", best_sequence=("rewrite",), best_qor=1.0,
            best_improvement=0.0, best_area=10, best_delay=3,
            num_evaluations=budget)

    def test_follow_mixed_statuses_returns_when_settled(self, tmp_path,
                                                        capsys):
        """``show --follow`` over failed + quarantined + partial cells.

        The partial cell is completed from the main thread while the
        follower polls in the background; the follower must return once
        every cell has a terminal status.  The join timeout bounds the
        wait — nothing sleeps to synchronise.
        """
        campaign = _campaign(seeds=(0, 1, 2), budget=2)
        store = CampaignStore(tmp_path / "runs")
        resolved = store.initialise(campaign)
        cells = resolved.cells()

        store.write_record(RunRecord.from_failure(
            cells[0], campaign.budget, ValueError("optimiser bug")))
        store.write_record(RunRecord.from_quarantine(
            cells[1], campaign.budget, RuntimeError("kept crashing"), 3))
        store.append_trajectory(cells[2].cell_id, {"round_index": 1})
        store.write_checkpoint(cells[2].cell_id, {"round": 1})
        assert store.cell_statuses()[cells[2].cell_id] == "partial"

        outcome = []
        follower = threading.Thread(
            target=lambda: outcome.append(cli.main(
                ["show", "--store", str(store.root), "--follow",
                 "--interval", "0.05"])),
            daemon=True)
        follower.start()
        store.write_record(self._ok_record(cells[2], campaign.budget))
        follower.join(timeout=30)
        assert not follower.is_alive(), "--follow never settled"
        assert outcome == [0]

        captured = capsys.readouterr()
        assert "[failed" in captured.out
        assert "[quarantined" in captured.out
        assert "[done" in captured.out

    def test_show_lists_quarantined_rounds(self, tmp_path, capsys):
        campaign = _campaign(seeds=(0,), budget=2)
        store = CampaignStore(tmp_path / "runs")
        resolved = store.initialise(campaign)
        cell = resolved.cells()[0]
        store.append_trajectory(cell.cell_id, {"round_index": 1})
        store.write_record(RunRecord.from_quarantine(
            cell, campaign.budget, RuntimeError("kept hanging"), 3))
        assert cli.main(["show", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "1 round(s) persisted" in out
