"""Tests for the resumable campaign store and run/resume drivers."""

import json
import os

import pytest

from repro.api import (
    Campaign,
    CampaignStore,
    Problem,
    RunRecord,
    StoreError,
    resume_campaign,
    run_campaign,
)


@pytest.fixture()
def campaign():
    return Campaign(
        problems=(Problem("adder", width=4, sequence_length=3),
                  Problem("sqrt", width=4, sequence_length=3,
                          objective="area")),
        methods=("rs", "ga"),
        seeds=(0, 1),
        budget=5,
        name="store-demo",
    )


def _dicts(records):
    return [record.to_dict() for record in records]


class TestCampaignStore:
    def test_initialise_and_reload(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        resolved = store.initialise(campaign)
        assert store.exists()
        assert store.load_campaign() == resolved
        # Widths are pinned in the manifest.
        assert all(problem.width is not None
                   for problem in store.load_campaign().problems)

    def test_reopen_same_campaign_ok(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        store.initialise(campaign)
        store.initialise(campaign)  # no error

    def test_reopen_different_campaign_rejected(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        store.initialise(campaign)
        other = Campaign(problems=(Problem("adder", width=4),), name="other")
        with pytest.raises(StoreError, match="different configuration"):
            store.initialise(other)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign manifest"):
            CampaignStore(tmp_path / "nope").load_campaign()

    def test_record_round_trip(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        store.initialise(campaign)
        records = run_campaign(campaign, store)
        for record in records:
            rebuilt = store.read_record(record.cell_id)
            assert rebuilt.to_dict() == record.to_dict()

    def test_torn_record_is_an_error(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        run_campaign(campaign, store)
        cell_id = sorted(store.completed_cell_ids())[0]
        store.cell_path(cell_id).write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="cannot read cell record"):
            store.read_record(cell_id)


class TestRunAndResume:
    def test_store_records_all_cells(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        records = run_campaign(campaign, store)
        assert len(records) == len(campaign.cells())
        assert store.completed_cell_ids() == {
            cell.cell_id for cell in campaign.cells()}
        # Cell order matches campaign order.
        assert [record.cell_id for record in records] == [
            cell.cell_id for cell in campaign.cells()]

    def test_records_capture_metadata(self, campaign, tmp_path):
        records = run_campaign(campaign, tmp_path / "run")
        ga_records = [record for record in records if record.method == "ga"]
        assert ga_records
        for record in ga_records:
            assert "population_size" in record.metadata
            assert "num_generations" in record.metadata

    def test_resume_skips_completed_cells_bit_identically(self, campaign, tmp_path):
        """Kill + resume reproduces the uninterrupted grid bit-identically."""
        uninterrupted = run_campaign(campaign, tmp_path / "full")

        # Simulate a mid-run kill: drop half the finished cells.
        store = CampaignStore(tmp_path / "killed")
        run_campaign(campaign, store)
        for cell_id in sorted(store.completed_cell_ids())[::2]:
            os.unlink(store.cell_path(cell_id))
        assert len(store.completed_cell_ids()) == len(campaign.cells()) // 2

        resumed = resume_campaign(store)
        assert _dicts(resumed) == _dicts(uninterrupted)
        # Histories are compared exactly — float-for-float.
        for a, b in zip(resumed, uninterrupted):
            assert a.history == b.history
            assert a.best_trajectory == b.best_trajectory
            assert a.best_sequence == b.best_sequence

    def test_fully_complete_store_runs_nothing(self, campaign, tmp_path):
        store = CampaignStore(tmp_path / "run")
        first = run_campaign(campaign, store)
        progress = []
        second = resume_campaign(store, progress=progress.append)
        assert _dicts(first) == _dicts(second)
        assert all("[cached]" in message for message in progress)

    def test_parallel_resume_matches_serial(self, campaign, tmp_path):
        serial = run_campaign(campaign, tmp_path / "serial", jobs=1)
        store = CampaignStore(tmp_path / "parallel")
        run_campaign(campaign, store)
        for cell_id in sorted(store.completed_cell_ids())[1::2]:
            os.unlink(store.cell_path(cell_id))
        parallel = resume_campaign(store, jobs=2)
        assert _dicts(serial) == _dicts(parallel)

    def test_run_without_store(self, campaign):
        records = run_campaign(campaign)
        assert len(records) == len(campaign.cells())
        assert all(isinstance(record, RunRecord) for record in records)

    def test_persistent_cache_does_not_change_results(self, campaign, tmp_path):
        plain = run_campaign(campaign)
        cached = run_campaign(campaign, cache_dir=str(tmp_path / "qor-cache"))
        warm = run_campaign(campaign, cache_dir=str(tmp_path / "qor-cache"))
        assert _dicts(plain) == _dicts(cached) == _dicts(warm)

    def test_record_json_is_plain(self, campaign, tmp_path):
        """Stored records (including optimiser metadata) are valid JSON."""
        store = CampaignStore(tmp_path / "run")
        run_campaign(campaign, store)
        for cell_id in store.completed_cell_ids():
            payload = json.loads(
                store.cell_path(cell_id).read_text(encoding="utf-8"))
            assert payload["cell_id"] == cell_id
            assert isinstance(payload["history"], list)

    def test_records_convert_to_results_for_tables(self, campaign, tmp_path):
        from repro.experiments import build_qor_table

        records = run_campaign(campaign, tmp_path / "run")
        table = build_qor_table([record.to_result() for record in records])
        assert "RS" in table.methods and "GA" in table.methods

    def test_boils_resume_bit_identical(self, tmp_path):
        """The headline method round-trips through the store too."""
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("boils",),
            seeds=(0,),
            budget=6,
            method_overrides={"boils": {"num_initial": 2,
                                        "local_search_queries": 20,
                                        "adam_steps": 1, "fit_every": 2}},
            name="boils-resume",
        )
        uninterrupted = run_campaign(campaign, tmp_path / "full")
        store = CampaignStore(tmp_path / "killed")
        store.initialise(campaign)
        resumed = resume_campaign(store)
        assert _dicts(resumed) == _dicts(uninterrupted)
        assert "kernel_params" in resumed[0].metadata
