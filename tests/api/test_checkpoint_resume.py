"""Round-granular execution core: mid-cell kill+resume, events, isolation.

The acceptance property of the round-granular refactor: killing a
campaign *mid-cell* and resuming produces a final trajectory and
``RunRecord`` bit-identical to the uninterrupted run, for every
registered optimiser, with per-round JSONL present in the store.  Plus:
the streamed event order is deterministic (also under ``jobs > 1``), a
raising cell is isolated as a failed record instead of aborting the
campaign, and the campaign-level wall-clock/early-stop knobs thread
through the drive loop.
"""

import json

import pytest

from repro.api import (
    Campaign,
    CampaignStore,
    Problem,
    resume_campaign,
    run_campaign,
)

BUDGETS = {"rs": 6, "greedy": 14, "ga": 25, "boils": 6, "sbo": 6,
           "a2c": 4, "ppo": 4, "graph-rl": 4}
KILL_ROUNDS = {"rs": 1, "greedy": 1, "ga": 1, "boils": 3, "sbo": 3,
               "a2c": 2, "ppo": 2, "graph-rl": 2}
OVERRIDES = {
    "boils": {"num_initial": 2, "local_search_queries": 20,
              "adam_steps": 1, "fit_every": 2},
    "sbo": {"num_initial": 2, "adam_steps": 1, "fit_every": 2},
}


def _single_method_campaign(method):
    return Campaign(
        problems=(Problem("adder", width=4, sequence_length=3),),
        methods=(method,),
        seeds=(0,),
        budget=BUDGETS[method],
        method_overrides=({method: OVERRIDES[method]}
                          if method in OVERRIDES else {}),
        name=f"resume-{method}",
    )


class _Kill(KeyboardInterrupt):
    """Simulated mid-cell kill (KeyboardInterrupt is never isolated)."""


def _killer_at(round_index):
    def on_event(cell_id, event):
        if (event["kind"] == "round_completed"
                and event["round_index"] == round_index):
            raise _Kill(f"killed {cell_id} after round {round_index}")
    return on_event


def _dicts(records):
    return [record.to_dict() for record in records]


class TestMidCellKillResume:
    @pytest.mark.parametrize("method", sorted(BUDGETS))
    def test_kill_and_resume_bit_identical(self, method, tmp_path):
        campaign = _single_method_campaign(method)
        full_store = CampaignStore(tmp_path / "full")
        uninterrupted = run_campaign(campaign, full_store)

        killed_store = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed_store,
                         on_event=_killer_at(KILL_ROUNDS[method]))
        # The kill left a mid-cell checkpoint, no completed record.
        cell_id = campaign.cells()[0].cell_id
        assert killed_store.completed_cell_ids() == set()
        assert killed_store.partial_cell_ids() == {cell_id}

        resumed = resume_campaign(killed_store)
        assert _dicts(resumed) == _dicts(uninterrupted)
        # Histories are compared exactly — float-for-float.
        assert resumed[0].history == uninterrupted[0].history
        assert resumed[0].best_trajectory == uninterrupted[0].best_trajectory
        assert resumed[0].best_sequence == uninterrupted[0].best_sequence
        # The continued trajectory JSONL is byte-identical too.
        assert (killed_store.trajectory_path(cell_id).read_bytes()
                == full_store.trajectory_path(cell_id).read_bytes())
        # Completion cleared the checkpoint.
        assert killed_store.partial_cell_ids() == set()

    def test_kill_with_refit_gate_enabled(self, tmp_path):
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("boils",),
            seeds=(0,),
            budget=6,
            method_overrides={"boils": {
                "num_initial": 2, "local_search_queries": 20,
                "adam_steps": 1, "fit_every": 1, "refit_gate": True,
                "refit_gate_tol": 1.0, "refit_gate_patience": 1}},
            name="resume-gated",
        )
        uninterrupted = run_campaign(campaign, tmp_path / "full")
        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, on_event=_killer_at(3))
        resumed = resume_campaign(killed)
        assert _dicts(resumed) == _dicts(uninterrupted)

    def test_torn_trajectory_line_does_not_wedge_resume(self, tmp_path):
        """A kill mid-append leaves a partial JSONL line; resume must cope."""
        campaign = _single_method_campaign("boils")
        full_store = CampaignStore(tmp_path / "full")
        uninterrupted = run_campaign(campaign, full_store)

        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, on_event=_killer_at(3))
        cell_id = campaign.cells()[0].cell_id
        # Simulate the torn append: a partial line with no newline.
        with open(killed.trajectory_path(cell_id), "a",
                  encoding="utf-8") as handle:
            handle.write('{"round": 4, "num_eval')
        assert killed.trajectory_round_count(cell_id) == 3

        resumed = resume_campaign(killed)
        assert _dicts(resumed) == _dicts(uninterrupted)
        assert (killed.trajectory_path(cell_id).read_bytes()
                == full_store.trajectory_path(cell_id).read_bytes())

    def test_kill_before_any_checkpoint_restarts_cell(self, tmp_path):
        """RoundStarted-only kills leave no checkpoint; resume restarts."""
        campaign = _single_method_campaign("rs")
        uninterrupted = run_campaign(campaign, tmp_path / "full")

        def kill_immediately(cell_id, event):
            if event["kind"] == "round_started":
                raise _Kill()

        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, on_event=kill_immediately)
        assert killed.partial_cell_ids() == set()
        resumed = resume_campaign(killed)
        assert _dicts(resumed) == _dicts(uninterrupted)


class TestTrajectoryStore:
    def test_per_round_jsonl_matches_history(self, tmp_path):
        campaign = _single_method_campaign("boils")
        store = CampaignStore(tmp_path / "run")
        records = run_campaign(campaign, store)
        cell_id = records[0].cell_id

        trajectory = store.read_trajectory(cell_id)
        assert len(trajectory) >= 3  # true multi-line JSONL, one per round
        assert [line["round"] for line in trajectory] == list(
            range(1, len(trajectory) + 1))
        flattened = [record["qor_improvement"]
                     for line in trajectory for record in line["records"]]
        assert flattened == records[0].history
        assert trajectory[-1]["num_evaluations"] == records[0].num_evaluations
        # Raw JSONL on disk: one JSON object per line.
        lines = store.trajectory_path(cell_id).read_text().splitlines()
        assert len(lines) == len(trajectory)
        for line in lines:
            json.loads(line)

    def test_checkpoint_cadence(self, tmp_path):
        campaign = _single_method_campaign("boils")
        store = CampaignStore(tmp_path / "run")

        seen = []
        bodies = []

        def watch(cell_id, event):
            if event["kind"] == "round_completed":
                path = store.checkpoint_path(cell_id)
                seen.append(path.exists())
                if path.exists():
                    bodies.append(path.read_text())

        run_campaign(campaign, store, on_event=watch, checkpoint_every=2)
        # Checkpoints appear from round 2 on (cadence 2) and are cleared
        # once the final record lands.
        assert seen[0] is False and any(seen)
        assert store.partial_cell_ids() == set()
        # Checkpoint files are strict RFC 8259 JSON: the -inf/+inf
        # optimiser sentinels must be encoded as null, never Infinity.
        def reject(constant):
            raise AssertionError(f"non-standard JSON constant {constant!r}")
        for body in bodies:
            json.loads(body, parse_constant=reject)

    def test_checkpointing_disabled(self, tmp_path):
        campaign = _single_method_campaign("boils")
        store = CampaignStore(tmp_path / "run")
        records = run_campaign(campaign, store, checkpoint_every=0)
        assert records[0].status == "ok"
        assert not store.checkpoints_dir.is_dir()
        assert store.read_trajectory(records[0].cell_id)  # still written


class TestEventStream:
    def _campaign(self):
        return Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs", "ga"),
            seeds=(0, 1),
            budget=5,
            name="events",
        )

    @staticmethod
    def _by_cell(events):
        grouped = {}
        for cell_id, event in events:
            grouped.setdefault(cell_id, []).append(event)
        return grouped

    def test_serial_stream_shape(self):
        events = []
        run_campaign(self._campaign(),
                     on_event=lambda cid, e: events.append((cid, e)))
        grouped = self._by_cell(events)
        assert len(grouped) == 4
        for stream in grouped.values():
            kinds = [event["kind"] for event in stream]
            assert kinds[0] == "round_started"
            assert kinds[-1] in ("budget_exhausted", "early_stopped")
            completed = [event for event in stream
                         if event["kind"] == "round_completed"]
            assert [event["round_index"] for event in completed] == list(
                range(1, len(completed) + 1))
            # Every RoundStarted has a matching RoundCompleted — no
            # phantom round precedes an optimiser-exhausted stop.
            started = [event for event in stream
                       if event["kind"] == "round_started"]
            assert len(started) == len(completed)
            # Budget counters are monotonically non-decreasing.
            counts = [event["num_evaluations"] for event in stream]
            assert counts == sorted(counts)

    def test_parallel_stream_matches_serial_per_cell(self):
        serial_events = []
        run_campaign(self._campaign(),
                     on_event=lambda cid, e: serial_events.append((cid, e)))
        parallel_events = []
        run_campaign(self._campaign(), jobs=2,
                     on_event=lambda cid, e: parallel_events.append((cid, e)))

        def stable(stream):
            # Everything except wall-clock timings is deterministic.
            return [{k: v for k, v in event.items() if k != "elapsed_seconds"}
                    for event in stream]

        serial = self._by_cell(serial_events)
        parallel = self._by_cell(parallel_events)
        assert set(serial) == set(parallel)
        for cell_id in serial:
            assert stable(parallel[cell_id]) == stable(serial[cell_id])


class TestFailureIsolation:
    def test_raising_cell_is_recorded_and_campaign_continues(self, tmp_path):
        from repro.baselines.random_search import RandomSearch
        from repro.registry import OPTIMISERS, register_optimiser

        trip_file = tmp_path / "explode.flag"

        @register_optimiser("test-explode", display_name="Explode")
        class ExplodingSearch(RandomSearch):
            name = "Explode"

            def suggest(self, n=1):
                if trip_file.exists():
                    raise RuntimeError("synthetic cell failure")
                return super().suggest(n)

        try:
            campaign = Campaign(
                problems=(Problem("adder", width=4, sequence_length=3),),
                methods=("rs", "test-explode", "greedy"),
                seeds=(0,),
                budget=5,
                name="isolation",
            )
            exploding_cell = campaign.cells()[1].cell_id

            trip_file.touch()
            store = CampaignStore(tmp_path / "run")
            records = run_campaign(campaign, store)
            assert [record.status for record in records] == [
                "ok", "failed", "ok"]
            assert "synthetic cell failure" in str(records[1].metadata["error"])
            assert store.failed_cell_ids() == {exploding_cell}
            assert exploding_cell not in store.completed_cell_ids()

            # Resume retries exactly the failed cell and matches a clean run.
            trip_file.unlink()
            clean = run_campaign(campaign, tmp_path / "clean")
            resumed = resume_campaign(store)
            assert _dicts(resumed) == _dicts(clean)
            assert store.failed_cell_ids() == set()
        finally:
            OPTIMISERS.unregister("test-explode")

    def test_event_callback_errors_propagate_not_recorded(self, tmp_path):
        """A buggy parent callback aborts the run — it is not a cell failure."""
        campaign = _single_method_campaign("rs")

        def broken_callback(cell_id, event):
            raise RuntimeError("rendering bug in the parent")

        store = CampaignStore(tmp_path / "run")
        with pytest.raises(RuntimeError, match="rendering bug"):
            run_campaign(campaign, store, on_event=broken_callback)
        # The healthy cell must not be blamed for the callback crash.
        assert store.failed_cell_ids() == set()

    def test_bad_method_override_does_not_abort_campaign(self, tmp_path):
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs", "ga"),
            seeds=(0,),
            budget=4,
            method_overrides={"ga": {"no_such_argument": 1}},
            name="bad-override",
        )
        records = run_campaign(campaign, tmp_path / "run")
        assert records[0].status == "ok"
        assert records[1].status == "failed"
        assert "no_such_argument" in str(records[1].metadata["error"])


class TestCampaignKnobsThreadThrough:
    def test_early_stop_improvement_stops_cells(self, tmp_path):
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("ga",),
            seeds=(0,),
            budget=50,
            early_stop_improvement=-1000.0,  # any best satisfies this
            name="early-stop",
        )
        events = []
        records = run_campaign(campaign, tmp_path / "run",
                               on_event=lambda cid, e: events.append(e))
        assert records[0].num_evaluations < 50
        terminal = events[-1]
        assert terminal["kind"] == "early_stopped"
        assert terminal["reason"] == "stop_condition"

    def test_wall_clock_budget_stops_cells(self, tmp_path):
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs",),
            seeds=(0,),
            budget=10**6,  # unreachable: the clock must stop the cell
            wall_clock_budget=1e-6,
            name="wall-clock",
        )
        events = []
        records = run_campaign(campaign, tmp_path / "run",
                               on_event=lambda cid, e: events.append(e))
        assert records[0].num_evaluations < 10**6
        assert events[-1]["kind"] == "early_stopped"
        assert events[-1]["reason"] == "wall_clock"

    def test_kill_at_stop_round_resumes_without_extra_round(self, tmp_path):
        """A checkpoint taken at the stop round must not buy an extra round.

        The stop predicate fires *after* the round-r checkpoint is
        written; a kill in that window leaves a checkpoint whose
        restored state already satisfies the stop condition, and the
        resumed drive loop must re-apply it before executing anything.
        """
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("ga",),
            seeds=(0,),
            budget=50,
            early_stop_improvement=-1000.0,  # fires after round 1
            name="stop-round-kill",
        )
        full_store = CampaignStore(tmp_path / "full")
        uninterrupted = run_campaign(campaign, full_store)
        assert uninterrupted[0].num_evaluations < 50

        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, on_event=_killer_at(1))
        resumed = resume_campaign(killed)
        assert _dicts(resumed) == _dicts(uninterrupted)
        cell_id = campaign.cells()[0].cell_id
        assert (killed.trajectory_path(cell_id).read_bytes()
                == full_store.trajectory_path(cell_id).read_bytes())

    def test_file_backed_circuit_kill_resume_under_jobs2(self, tmp_path):
        """Mid-cell kill+resume on a *file-backed* circuit, ``jobs=2``.

        Pins that the ``EvaluatorSpec`` path+hash transport is
        resume-safe: the spec workers rebuild the evaluator from crosses
        the process-pool pipe, survives the kill, and the resumed run is
        bit-identical to an uninterrupted one.
        """
        from repro.aig.aiger import write_aiger
        from repro.circuits import make_adder
        from repro.engine.spec import EvaluatorSpec

        circuit_file = tmp_path / "adder4.aag"
        write_aiger(make_adder(4), circuit_file)
        problem = Problem(f"file:{circuit_file}", sequence_length=3)
        campaign = Campaign(
            problems=(problem,),
            methods=("rs", "greedy"),
            seeds=(0,),
            budget=8,
            name="file-resume",
        )

        # The spec round-trips the path and content hash through the
        # worker payload encoding.
        spec = problem.evaluator_spec()
        assert spec.circuit_file == str(circuit_file.resolve())
        assert spec.circuit_hash is not None
        assert EvaluatorSpec.from_payload(spec.to_payload()) == spec
        assert spec.build_evaluator().cache_key == (
            f"sha256:{spec.circuit_hash}:lut6")

        full_store = CampaignStore(tmp_path / "full")
        uninterrupted = run_campaign(campaign, full_store, jobs=2)
        assert all(record.status == "ok" for record in uninterrupted)

        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, jobs=2, on_event=_killer_at(1))
        assert killed.completed_cell_ids() == set()

        resumed = resume_campaign(killed, jobs=2)
        assert _dicts(resumed) == _dicts(uninterrupted)
        for cell in campaign.cells():
            assert (killed.trajectory_path(cell.cell_id).read_bytes()
                    == full_store.trajectory_path(cell.cell_id).read_bytes())

    def test_file_circuit_edited_between_run_and_resume_fails_loudly(
            self, tmp_path):
        """A changed circuit file must not silently mix into a resume.

        The manifest pins the file's content hash
        (:attr:`Problem.circuit_hash`); resuming after the file was
        edited aborts before dispatching any compute.
        """
        from repro.aig.aiger import write_aiger
        from repro.circuits import make_adder

        circuit_file = tmp_path / "adder4.aag"
        write_aiger(make_adder(4), circuit_file)
        campaign = Campaign(
            problems=(Problem(f"file:{circuit_file}", sequence_length=3),),
            methods=("rs",),
            seeds=(0,),
            budget=6,
            name="file-edited",
        )
        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, on_event=_killer_at(1))

        write_aiger(make_adder(5), circuit_file)  # edited on disk
        with pytest.raises(ValueError, match="changed on disk"):
            resume_campaign(killed)

    def test_knobs_round_trip_through_manifest(self, tmp_path):
        campaign = Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),),
            methods=("rs",),
            budget=4,
            wall_clock_budget=120.0,
            early_stop_improvement=5.0,
            name="knobs",
        )
        store = CampaignStore(tmp_path / "run")
        store.initialise(campaign)
        loaded = store.load_campaign()
        assert loaded.wall_clock_budget == 120.0
        assert loaded.early_stop_improvement == 5.0
