"""Tests for the generic ask/tell driver and the metadata threading."""

import numpy as np
import pytest

from repro.baselines import GeneticAlgorithm, GreedySearch, RandomSearch
from repro.bo import BOiLS
from repro.bo.base import DriveProgress, SequenceOptimiser, drive
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit
from repro.qor import QoREvaluator


@pytest.fixture(scope="module")
def adder():
    return get_circuit("adder", width=4)


@pytest.fixture()
def evaluator(adder):
    return QoREvaluator(adder)


@pytest.fixture()
def space():
    return SequenceSpace(sequence_length=3)


class TestDriveLoop:
    def test_consumes_exact_budget(self, evaluator, space):
        optimiser = RandomSearch(space=space, seed=0)
        optimiser.prepare(evaluator, 7)
        rounds = drive(optimiser, evaluator, 7)
        assert evaluator.num_evaluations == 7
        assert rounds >= 1

    def test_invalid_budget(self, evaluator, space):
        with pytest.raises(ValueError):
            drive(RandomSearch(space=space), evaluator, 0)

    def test_empty_suggest_ends_run(self, evaluator, space):
        # Greedy proposes nothing once the sequence is fully constructed;
        # the driver must stop even with budget remaining.
        optimiser = GreedySearch(space=space, seed=0)
        result = optimiser.optimise(evaluator, budget=500)
        max_needed = space.sequence_length * space.num_operations
        assert result.num_evaluations <= max_needed

    def test_on_round_progress(self, evaluator, space):
        seen = []
        optimiser = RandomSearch(space=space, seed=0)
        optimiser.optimise(evaluator, budget=5, on_round=seen.append)
        assert seen
        assert all(isinstance(item, DriveProgress) for item in seen)
        assert seen[-1].num_evaluations == 5
        assert seen[-1].budget == 5
        assert seen[-1].best is not None
        assert [item.round_index for item in seen] == list(range(1, len(seen) + 1))

    def test_stop_when_early_stop(self, evaluator, space):
        optimiser = GeneticAlgorithm(space=space, seed=0)
        result = optimiser.optimise(
            evaluator, budget=50,
            stop_when=lambda progress: progress.num_evaluations >= 10)
        assert result.num_evaluations < 50

    def test_max_seconds_wall_clock_budget(self, evaluator, space):
        optimiser = RandomSearch(space=space, seed=0)
        # A zero wall-clock budget stops after the first round.
        optimiser.prepare(evaluator, 200)
        rounds = drive(optimiser, evaluator, 200, max_seconds=0.0)
        assert rounds == 1

    def test_optimise_equals_manual_drive(self, adder, space):
        kwargs = dict(space=space, seed=3)
        via_optimise = RandomSearch(**kwargs).optimise(QoREvaluator(adder), budget=6)

        evaluator = QoREvaluator(adder)
        optimiser = RandomSearch(**kwargs)
        optimiser.prepare(evaluator, 6)
        drive(optimiser, evaluator, 6)
        manual = optimiser._build_result(evaluator, evaluator.aig.name,
                                         metadata=optimiser.run_metadata())
        assert via_optimise.history == manual.history
        assert via_optimise.best_sequence == manual.best_sequence


class TestMetadataThreading:
    def test_build_result_attaches_metadata(self, evaluator, space):
        optimiser = RandomSearch(space=space, seed=0)
        optimiser.prepare(evaluator, 3)
        drive(optimiser, evaluator, 3)
        result = optimiser._build_result(evaluator, "adder",
                                         metadata={"extra": 1})
        assert result.metadata == {"extra": 1}

    def test_ga_generations_recorded(self, evaluator, space):
        result = GeneticAlgorithm(space=space, seed=0).optimise(evaluator, budget=25)
        assert result.metadata["population_size"] == 20
        assert result.metadata["num_generations"] >= 1

    def test_boils_restarts_and_rounds_recorded(self, evaluator, space):
        result = BOiLS(space=space, seed=0, num_initial=2,
                       local_search_queries=20, adam_steps=1,
                       fit_every=2).optimise(evaluator, budget=6)
        assert "num_restarts" in result.metadata
        assert "num_rounds" in result.metadata
        assert "kernel_params" in result.metadata
        assert "trust_region_radius" in result.metadata

    def test_greedy_constructed_length_recorded(self, evaluator, space):
        result = GreedySearch(space=space, seed=0).optimise(evaluator, budget=40)
        assert result.metadata["constructed_length"] == space.sequence_length


class TestCustomAskTellOptimiser:
    def test_minimal_subclass_only_needs_suggest_observe(self, evaluator, space):
        class FixedPoint(SequenceOptimiser):
            name = "Fixed"

            def suggest(self, n=1):
                return np.zeros((1, self.space.sequence_length), dtype=int)

            def observe(self, rows, records):
                pass

            def run_metadata(self):
                return {"fixed": True}

        # One distinct sequence; memo hits are free, so an optimiser that
        # never proposes anything fresh needs the wall-clock escape hatch
        # (exercised in the next test).  budget=1 terminates naturally.
        result = FixedPoint(space=space, seed=0).optimise(evaluator, budget=1)
        assert result.metadata["fixed"] is True
        assert result.num_evaluations == 1

    def test_constant_proposals_bounded_by_max_seconds(self, adder, space):
        class Constant(SequenceOptimiser):
            name = "Const"

            def suggest(self, n=1):
                return np.zeros((1, self.space.sequence_length), dtype=int)

            def observe(self, rows, records):
                pass

        evaluator = QoREvaluator(adder)
        result = Constant(space=space).optimise(evaluator, budget=50,
                                                max_seconds=0.2)
        assert result.num_evaluations == 1
