"""Tests for the generic registry subsystem and its three instances."""

import numpy as np
import pytest

from repro.bo.base import SequenceOptimiser
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit
from repro.circuits.registry import register_circuit
from repro.experiments import available_methods, make_optimiser
from repro.qor import QoREvaluator
from repro.qor.objectives import Objective, resolve_objective
from repro.registry import (
    CIRCUITS,
    OBJECTIVES,
    OPTIMISERS,
    MethodSpec,
    Registry,
    RegistryError,
    register_objective,
    register_optimiser,
)


class TestRegistryCore:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry
        assert registry.keys() == ["a"]

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("fn")
        def fn():
            return 42

        assert registry.get("fn") is fn

    def test_duplicate_key_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(RegistryError, match="duplicate widget key 'a'"):
            registry.register("a", 2)
        # Explicit replace is allowed (tests, plugin development).
        registry.register("a", 3, replace=True)
        assert registry.get("a") == 3

    def test_invalid_key_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", 1)

    def test_unknown_key_lists_available(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(RegistryError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_registry_error_is_key_error(self):
        # Legacy `except KeyError` handlers (e.g. the CLI) must keep working.
        registry = Registry("widget")
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_preserves_registration_order(self):
        registry = Registry("widget")
        for key in ("z", "a", "m"):
            registry.register(key, key)
        assert registry.keys() == ["z", "a", "m"]


class _FakeEntryPoint:
    def __init__(self, name, value):
        self.name = name
        self._value = value

    def load(self):
        return self._value


class TestEntryPointDiscovery:
    def test_entry_points_discovered_lazily(self, monkeypatch):
        registry = Registry("widget", entry_point_group="repro.test_widgets")
        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: ([_FakeEntryPoint("plugged", "VALUE")]
                                if group == "repro.test_widgets" else []),
        )
        assert registry.get("plugged") == "VALUE"
        assert "plugged" in registry.keys()

    def test_in_process_registration_wins_over_entry_point(self, monkeypatch):
        registry = Registry("widget", entry_point_group="repro.test_widgets")
        registry.register("plugged", "LOCAL")
        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: [_FakeEntryPoint("plugged", "PLUGIN")],
        )
        assert registry.get("plugged") == "LOCAL"

    def test_broken_entry_point_skipped_with_warning(self, monkeypatch):
        class _BrokenEntryPoint:
            name = "broken"

            def load(self):
                raise ImportError("plugin module missing")

        registry = Registry("widget", entry_point_group="repro.test_widgets")
        registry.register("fine", "OK")
        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: [_BrokenEntryPoint(),
                                _FakeEntryPoint("plugged", "VALUE")],
        )
        with pytest.warns(UserWarning, match="'broken'"):
            keys = registry.keys()
        # The broken plugin is skipped; everything else still works.
        assert "broken" not in keys
        assert registry.get("fine") == "OK"
        assert registry.get("plugged") == "VALUE"

    def test_scanned_exactly_once(self, monkeypatch):
        calls = []
        registry = Registry("widget", entry_point_group="repro.test_widgets")
        monkeypatch.setattr(
            "importlib.metadata.entry_points",
            lambda group=None: calls.append(group) or [],
        )
        registry.keys()
        registry.keys()
        assert calls == ["repro.test_widgets"]


class TestBuiltinRegistries:
    def test_all_builtin_methods_present(self):
        keys = OPTIMISERS.keys()
        for expected in ("boils", "sbo", "rs", "greedy", "ga", "a2c", "ppo",
                         "graph-rl"):
            assert expected in keys

    def test_builtin_objectives_present(self):
        for expected in ("eq1", "area", "delay", "weighted"):
            assert expected in OBJECTIVES.keys()

    def test_builtin_circuits_present(self):
        assert "adder" in CIRCUITS.keys()
        assert len(CIRCUITS) >= 10

    def test_method_spec_shape(self):
        spec = OPTIMISERS.get("boils")
        assert isinstance(spec, MethodSpec)
        assert spec.display_name == "BOiLS"
        assert spec.defaults["fit_every"] == 2


class TestEndToEndExtension:
    """Acceptance: custom optimiser + objective + circuit, no core edits."""

    def test_custom_optimiser_runs_end_to_end(self):
        @register_optimiser("test-coordinate", display_name="Coord")
        class CoordinateDescent(SequenceOptimiser):
            name = "Coord"

            def prepare(self, evaluator, budget):
                self._current = self.space.sample(1, self.rng)[0]
                self._position = 0

            def suggest(self, n=1):
                row = self._current.copy()
                row[self._position % self.space.sequence_length] = int(
                    self.rng.integers(self.space.num_operations))
                self._position += 1
                return row[None, :]

            def observe(self, rows, records):
                self._current = rows[0]

        try:
            assert "test-coordinate" in available_methods()
            optimiser = make_optimiser(
                "test-coordinate", space=SequenceSpace(sequence_length=3), seed=0)
            evaluator = QoREvaluator(get_circuit("adder", width=4))
            result = optimiser.optimise(evaluator, budget=5)
            assert result.num_evaluations == 5
            assert result.method == "Coord"
        finally:
            OPTIMISERS.unregister("test-coordinate")

    def test_custom_objective_runs_end_to_end(self):
        @register_objective("test-area-squared")
        def make_area_squared():
            class AreaSquared(Objective):
                key = "test-area-squared"

                def value(self, area, delay, area_ref, delay_ref):
                    return (area / area_ref) ** 2

            return AreaSquared()

        try:
            evaluator = QoREvaluator(get_circuit("adder", width=4),
                                     objective="test-area-squared")
            record = evaluator.evaluate(["balance", "rewrite"])
            assert record.qor == pytest.approx(
                (record.area / evaluator.reference_area) ** 2)
            assert evaluator.reference_qor == 1.0
        finally:
            OBJECTIVES.unregister("test-area-squared")

    def test_custom_circuit_runs_end_to_end(self):
        from repro.aig.graph import AIG

        @register_circuit("test-passthrough", display_name="Passthrough",
                          default_width=4)
        def make_passthrough(width):
            aig = AIG(name=f"passthrough_{width}")
            for i in range(width):
                literal = aig.add_pi(f"x{i}")
                aig.add_po(literal, name=f"y{i}")
            return aig

        try:
            aig = get_circuit("test-passthrough")
            assert aig.num_pis == 4
            aig = get_circuit("test-passthrough", width=7)
            assert aig.num_pis == 7
        finally:
            CIRCUITS.unregister("test-passthrough")

    def test_registered_name_beats_builtin_alias(self):
        # 'mult' is a built-in alias for 'multiplier'; a user circuit
        # registered under that exact name must still be reachable.
        from repro.aig.graph import AIG
        from repro.circuits.registry import get_circuit_spec

        @register_circuit("mult", default_width=2)
        def make_tiny(width):
            aig = AIG(name=f"tiny_{width}")
            aig.add_po(aig.add_pi("x"), name="y")
            return aig

        try:
            assert get_circuit_spec("mult").generator is make_tiny
        finally:
            CIRCUITS.unregister("mult")
        # With no registration, the alias resolves to the bundled circuit.
        assert get_circuit_spec("mult").name == "multiplier"

    def test_mixed_case_registered_name_is_reachable(self):
        from repro.aig.graph import AIG
        from repro.circuits.registry import get_circuit_spec

        @register_circuit("MyCircuit", default_width=2)
        def make_mine(width):
            aig = AIG(name=f"mine_{width}")
            aig.add_po(aig.add_pi("x"), name="y")
            return aig

        try:
            assert get_circuit_spec("MyCircuit").generator is make_mine
        finally:
            CIRCUITS.unregister("MyCircuit")

    def test_bare_generator_registry_entry_is_normalised(self):
        # The repro.circuits entry-point group may export a plain
        # generator callable; lookups must wrap it into a CircuitSpec.
        from repro.aig.graph import AIG
        from repro.circuits.registry import get_circuit_spec, list_circuits

        def make_wire(width):
            aig = AIG(name=f"wire_{width}")
            aig.add_po(aig.add_pi("x"), name="y")
            return aig

        CIRCUITS.register("test-wire", make_wire)  # raw callable, no spec
        try:
            spec = get_circuit_spec("test-wire")
            assert spec.generator is make_wire
            assert spec.default_width == 8
            assert any(entry.name == "test-wire" for entry in list_circuits())
            assert get_circuit("test-wire", width=3).num_pis == 1
        finally:
            CIRCUITS.unregister("test-wire")

    def test_resolve_objective_parameterised_round_trip(self):
        objective = resolve_objective(
            {"objective": "weighted", "w_area": 2.0, "w_delay": 0.5})
        assert objective.reference_value() == pytest.approx(2.5)
        rebuilt = resolve_objective(objective.spec())
        assert rebuilt == objective
