"""Tests for pluggable objectives and their evaluator integration."""

import pytest

from repro.circuits import get_circuit
from repro.engine.cache import PersistentQoRCache
from repro.qor import QoREvaluator
from repro.qor.objectives import (
    AreaObjective,
    DelayObjective,
    Eq1Objective,
    WeightedObjective,
    canonical_spec_string,
    parse_objective_argument,
    resolve_objective,
)


class TestObjectiveValues:
    def test_eq1(self):
        assert Eq1Objective().value(30, 6, 20, 4) == 30 / 20 + 6 / 4
        assert Eq1Objective().reference_value() == 2.0

    def test_area_delay(self):
        assert AreaObjective().value(30, 6, 20, 4) == 1.5
        assert DelayObjective().value(30, 6, 20, 4) == 1.5
        assert AreaObjective().reference_value() == 1.0

    def test_weighted(self):
        objective = WeightedObjective(w_area=2.0, w_delay=0.5)
        assert objective.value(30, 6, 20, 4) == 2.0 * 1.5 + 0.5 * 1.5
        assert objective.reference_value() == 2.5

    def test_weighted_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedObjective(w_area=-1.0)
        with pytest.raises(ValueError):
            WeightedObjective(w_area=0.0, w_delay=0.0)

    def test_weighted_unit_weights_match_eq1_bitwise(self):
        eq1 = Eq1Objective()
        weighted = WeightedObjective(1.0, 1.0)
        for area, delay, ra, rd in [(37, 9, 21, 5), (123, 17, 119, 13)]:
            assert weighted.value(area, delay, ra, rd) == eq1.value(area, delay, ra, rd)


class TestSpecs:
    def test_resolve_key(self):
        assert isinstance(resolve_objective("area"), AreaObjective)
        assert isinstance(resolve_objective(None), Eq1Objective)

    def test_resolve_dict_and_json_string(self):
        spec = {"objective": "weighted", "w_area": 3.0, "w_delay": 1.0}
        objective = resolve_objective(spec)
        assert objective.w_area == 3.0
        # The canonical string form (used inside picklable specs) parses too.
        assert resolve_objective(canonical_spec_string(spec)) == objective

    def test_spec_round_trip(self):
        for objective in (Eq1Objective(), AreaObjective(), DelayObjective(),
                          WeightedObjective(2.0, 1.0)):
            assert resolve_objective(objective.spec()) == objective

    def test_canonical_string_is_deterministic(self):
        a = canonical_spec_string({"objective": "weighted", "w_area": 1.0,
                                   "w_delay": 2.0})
        b = canonical_spec_string({"w_delay": 2.0, "w_area": 1.0,
                                   "objective": "weighted"})
        assert a == b

    def test_unknown_objective(self):
        with pytest.raises(KeyError):
            resolve_objective("nope")

    def test_zero_reference_objective_rejected_at_construction(self):
        from repro.qor.objectives import Objective

        class DeltaFromReference(Objective):
            key = "delta"

            def value(self, area, delay, area_ref, delay_ref):
                return area / area_ref - 1.0

        with pytest.raises(ValueError, match="reference_value"):
            resolve_objective(DeltaFromReference())

    def test_parse_cli_argument(self):
        assert parse_objective_argument("area") == "area"
        assert parse_objective_argument("weighted:2,0.5") == {
            "objective": "weighted", "w_area": 2.0, "w_delay": 0.5}
        assert parse_objective_argument('{"objective": "delay"}') == {
            "objective": "delay"}
        with pytest.raises(ValueError):
            parse_objective_argument("area:1,2")
        with pytest.raises(ValueError):
            parse_objective_argument("weighted:1")


class TestEvaluatorIntegration:
    @pytest.fixture(scope="class")
    def adder(self):
        return get_circuit("adder", width=4)

    def test_default_objective_matches_legacy_eq1(self, adder):
        evaluator = QoREvaluator(adder)
        record = evaluator.evaluate(["balance", "rewrite"])
        assert evaluator.reference_qor == 2.0
        assert record.qor == (record.area / evaluator.reference_area
                              + record.delay / evaluator.reference_delay)

    def test_area_objective_ignores_delay(self, adder):
        evaluator = QoREvaluator(adder, objective="area")
        record = evaluator.evaluate(["balance", "rewrite"])
        assert record.qor == record.area / evaluator.reference_area
        assert evaluator.reference_qor == 1.0
        assert evaluator.objective_spec == "area"

    def test_improvement_uses_objective_reference(self, adder):
        evaluator = QoREvaluator(adder, objective="delay")
        record = evaluator.evaluate(["balance"])
        expected = (1.0 - record.qor) / 1.0 * 100.0
        assert record.qor_improvement == pytest.approx(expected)

    def test_raw_measurements_objective_independent(self, adder):
        sequence = ["balance", "rewrite", "refactor"]
        by_objective = {
            key: QoREvaluator(adder, objective=key).evaluate(sequence)
            for key in ("eq1", "area", "delay")
        }
        areas = {record.area for record in by_objective.values()}
        delays = {record.delay for record in by_objective.values()}
        assert len(areas) == 1 and len(delays) == 1

    def test_persistent_cache_shared_across_objectives(self, adder, tmp_path):
        """Cache keys stay raw (area, delay): switching objectives never
        invalidates the persistent cache."""
        sequence = ["balance", "rewrite"]
        with PersistentQoRCache(str(tmp_path)) as cache:
            first = QoREvaluator(adder, persistent_cache=cache)
            record_eq1 = first.evaluate(sequence)
            assert first.num_computed == 1

            second = QoREvaluator(adder, objective="area",
                                  persistent_cache=cache)
            record_area = second.evaluate(sequence)
            # Warm hit: counted as an evaluation but nothing recomputed.
            assert second.num_computed == 0
            assert second.num_persistent_hits == 1
            assert (record_area.area, record_area.delay) == (
                record_eq1.area, record_eq1.delay)
            # Same raw measurement, objective-specific scalar.
            assert record_area.qor == record_area.area / second.reference_area
