"""Tests for the declarative Problem/Campaign layer."""

import json

import pytest

from repro.api import Campaign, Problem
from repro.api.campaign import env_int
from repro.circuits.registry import resolve_width


class TestProblem:
    def test_defaults(self):
        problem = Problem("adder")
        assert problem.lut_size == 6
        assert problem.sequence_length == 20
        assert problem.objective == "eq1"

    def test_key_derivation(self):
        assert Problem("adder", width=4, sequence_length=3).key == "adder-w4-lut6-k3"
        assert Problem("adder", width=4, sequence_length=3,
                       objective="area").key == "adder-w4-lut6-k3-area"
        assert Problem("adder", name="mine").key == "mine"

    def test_parameterised_objective_keys_do_not_collide(self):
        a = Problem("adder", width=4,
                    objective={"objective": "weighted", "w_area": 2.0,
                               "w_delay": 1.0})
        b = Problem("adder", width=4,
                    objective={"objective": "weighted", "w_area": 1.0,
                               "w_delay": 2.0})
        assert a.key != b.key

    def test_resolved_pins_width_and_canonical_name(self):
        problem = Problem("Divisor").resolved()
        assert problem.circuit == "div"
        assert problem.width == resolve_width("div", None)

    def test_round_trip(self):
        problem = Problem("sqrt", width=5, lut_size=4, sequence_length=7,
                          objective={"objective": "weighted", "w_area": 2.0,
                                     "w_delay": 1.0},
                          reference_sequence=("balance", "rewrite"),
                          name="custom")
        rebuilt = Problem.from_dict(json.loads(json.dumps(problem.to_dict())))
        assert rebuilt == problem

    def test_objective_instance_serialises_as_spec(self, tmp_path):
        from repro.qor.objectives import WeightedObjective

        problem = Problem("adder", width=4,
                          objective=WeightedObjective(2.0, 1.0))
        payload = problem.to_dict()
        assert payload["objective"] == {"objective": "weighted",
                                        "w_area": 2.0, "w_delay": 1.0}
        campaign = Campaign(problems=(problem,), methods=("rs",))
        path = campaign.save(tmp_path / "campaign.json")  # must not raise
        rebuilt = Campaign.load(path)
        assert rebuilt.problems[0].objective == payload["objective"]

    def test_validate_rejects_unknowns(self):
        with pytest.raises(KeyError):
            Problem("cpu").validate()
        with pytest.raises(KeyError):
            Problem("adder", objective="nope").validate()
        with pytest.raises(ValueError):
            Problem("adder", sequence_length=0).validate()

    def test_unsafe_name_rejected(self):
        # Names become cell-record filenames; path separators must fail
        # at validation time, not after a cell's compute has finished.
        with pytest.raises(ValueError, match="filename"):
            Problem("adder", name="grp/adder").validate()
        Problem("adder", name="grp.adder-v2_x").validate()

    def test_build_evaluator(self):
        evaluator = Problem("adder", width=4, objective="area").build_evaluator()
        assert evaluator.lut_size == 6
        assert evaluator.reference_qor == 1.0


class TestCampaign:
    def _campaign(self):
        return Campaign(
            problems=(Problem("adder", width=4, sequence_length=3),
                      Problem("sqrt", width=4, sequence_length=3,
                              objective="area")),
            methods=("rs", "greedy"),
            seeds=(0, 2),
            budget=6,
            method_overrides={"rs": {"use_latin_hypercube": False}},
            name="demo",
        )

    def test_cells_problem_major_order(self):
        cells = self._campaign().cells()
        assert len(cells) == 8
        assert [cell.index for cell in cells] == list(range(8))
        assert cells[0].cell_id == "adder-w4-lut6-k3__rs__s0"
        assert cells[1].cell_id == "adder-w4-lut6-k3__rs__s2"
        assert cells[2].cell_id == "adder-w4-lut6-k3__greedy__s0"
        assert cells[4].problem.key.startswith("sqrt")

    def test_json_round_trip(self):
        campaign = self._campaign()
        rebuilt = Campaign.from_json(campaign.to_json())
        assert rebuilt == campaign
        assert rebuilt.to_dict() == campaign.to_dict()

    def test_save_load(self, tmp_path):
        campaign = self._campaign()
        path = campaign.save(tmp_path / "campaign.json")
        assert Campaign.load(path) == campaign

    def test_newer_format_version_rejected(self):
        payload = self._campaign().to_dict()
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            Campaign.from_dict(payload)

    def test_validate(self):
        self._campaign().validate()
        with pytest.raises(KeyError):
            Campaign(problems=(Problem("adder"),), methods=("nope",)).validate()
        with pytest.raises(ValueError):
            Campaign(problems=()).validate()
        with pytest.raises(ValueError):
            Campaign(problems=(Problem("adder"),), budget=0).validate()
        with pytest.raises(ValueError, match="method_overrides"):
            Campaign(problems=(Problem("adder"),), methods=("rs",),
                     method_overrides={"ga": {}}).validate()

    def test_duplicate_problem_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate problem keys"):
            Campaign(problems=(Problem("adder", width=4),
                               Problem("adder", width=4))).validate()

    def test_string_problems_promoted(self):
        campaign = Campaign(problems=("adder", "sqrt"))
        assert all(isinstance(problem, Problem) for problem in campaign.problems)

    def test_paper_protocol(self):
        campaign = Campaign.paper_protocol()
        assert len(campaign.problems) == 10
        assert campaign.budget == 200
        assert len(campaign.cells()) == 10 * 8 * 5


class TestEnvOverrides:
    def test_env_layer_is_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET", "33")
        campaign = Campaign(problems=(Problem("adder"),), budget=5)
        # Nothing happens implicitly...
        assert campaign.budget == 5
        # ...until the override layer is applied.
        assert campaign.with_env_overrides().budget == 33
        assert Campaign.from_env_overrides(campaign).budget == 33

    def test_env_overrides_all_knobs(self):
        campaign = Campaign(
            problems=(Problem("adder"), Problem("sqrt")), budget=5, seeds=(0,))
        adjusted = campaign.with_env_overrides({
            "REPRO_BUDGET": "17", "REPRO_SEEDS": "3",
            "REPRO_SEQ_LENGTH": "4", "REPRO_CIRCUIT_WIDTH": "5",
        })
        assert adjusted.budget == 17
        assert adjusted.seeds == (0, 1, 2)
        assert all(problem.sequence_length == 4 for problem in adjusted.problems)
        assert all(problem.width == 5 for problem in adjusted.problems)

    def test_unset_env_leaves_campaign_untouched(self):
        campaign = Campaign(problems=(Problem("adder"),), budget=5,
                            seeds=(4, 5))
        assert campaign.with_env_overrides({}) == campaign


class TestEnvIntWarnsLoudly:
    def test_malformed_value_warns_and_falls_back(self):
        with pytest.warns(UserWarning, match="REPRO_BUDGET='abc'"):
            assert env_int("REPRO_BUDGET", 7, {"REPRO_BUDGET": "abc"}) == 7

    def test_valid_value_silent(self, recwarn):
        assert env_int("REPRO_BUDGET", 7, {"REPRO_BUDGET": "9"}) == 9
        assert env_int("REPRO_BUDGET", 7, {}) == 7
        assert not recwarn.list

    def test_legacy_experiment_config_warns_too(self, monkeypatch):
        from repro.experiments import ExperimentConfig

        monkeypatch.setenv("REPRO_BUDGET", "not-a-number")
        with pytest.warns(UserWarning, match="REPRO_BUDGET"):
            config = ExperimentConfig()
        assert config.budget == 12  # the documented default

    def test_campaign_env_layer_warns_on_malformed(self):
        campaign = Campaign(problems=(Problem("adder"),), budget=5)
        with pytest.warns(UserWarning, match="REPRO_SEEDS"):
            adjusted = campaign.with_env_overrides({"REPRO_SEEDS": "two"})
        assert adjusted.seeds == campaign.seeds


class TestExperimentConfigAdapter:
    def test_to_campaign(self):
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig(
            budget=9, num_seeds=2, sequence_length=4, circuit_width=4,
            circuits=("adder", "sqrt"), methods=("rs",), lut_size=4,
            method_overrides={"rs": {"use_latin_hypercube": False}},
        )
        campaign = config.to_campaign(name="legacy")
        assert campaign.budget == 9
        assert campaign.seeds == (0, 1)
        assert campaign.methods == ("rs",)
        assert [problem.circuit for problem in campaign.problems] == ["adder", "sqrt"]
        assert all(problem.lut_size == 4 for problem in campaign.problems)
        assert campaign.method_overrides == {"rs": {"use_latin_hypercube": False}}

    def test_to_campaign_drops_overrides_for_absent_methods(self):
        from repro.experiments import ExperimentConfig

        # The CLI's table shim always carries boils/sbo overrides even
        # when --methods excludes them; legacy runs ignore the unused
        # entries, so the converted campaign must validate cleanly.
        config = ExperimentConfig(
            methods=("rs",),
            method_overrides={"boils": {"num_initial": 4}},
        )
        campaign = config.to_campaign().validate()
        assert campaign.method_overrides == {}
