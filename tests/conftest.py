"""Shared fixtures for the test suite.

Circuits used in tests are deliberately tiny (4–8 bit datapaths) so that
exhaustive functional-equivalence checks and full optimisation loops run
in milliseconds; the same code paths scale to the paper-size instances via
the width parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aig.graph import AIG
from repro.bo.space import SequenceSpace
from repro.circuits import make_adder, make_multiplier, make_square_root
from repro.qor import QoREvaluator

#: Default base seed of the differential fuzz suite; CI rotates it per
#: run via ``--fuzz-seed=$GITHUB_RUN_ID``.
DEFAULT_FUZZ_SEED = 20260730

#: Default base seed of the fault-injection suite; CI rotates it per run
#: via ``--fault-seed=$GITHUB_RUN_ID``.
DEFAULT_FAULT_SEED = 20260808


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--fuzz-seed", type=int, default=DEFAULT_FUZZ_SEED, metavar="SEED",
        help="base seed of the differential fuzz suite "
             "(tests/properties/test_fuzz_substrate.py); every failure "
             "message names the seed that reproduces it")
    parser.addoption(
        "--fault-seed", type=int, default=DEFAULT_FAULT_SEED, metavar="SEED",
        help="base seed of the fault-injection recovery suite "
             "(tests/api/test_fault_recovery.py); every failure message "
             "names the seed that reproduces it")


@pytest.fixture(scope="session")
def fuzz_seed(request) -> int:
    return int(request.config.getoption("--fuzz-seed"))


@pytest.fixture(scope="session")
def fault_seed(request) -> int:
    return int(request.config.getoption("--fault-seed"))


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20220314)


@pytest.fixture(scope="session")
def small_adder() -> AIG:
    """A 4-bit ripple-carry adder (small enough for exhaustive checks)."""
    return make_adder(4)


@pytest.fixture(scope="session")
def small_multiplier() -> AIG:
    """A 3x3 array multiplier."""
    return make_multiplier(3)


@pytest.fixture(scope="session")
def small_sqrt() -> AIG:
    """A 6-bit square-root unit."""
    return make_square_root(6)


@pytest.fixture()
def xor_chain() -> AIG:
    """A hand-built 3-input XOR chain with one output."""
    aig = AIG(name="xor_chain")
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    c = aig.add_pi("c")
    aig.add_po(aig.add_xor(aig.add_xor(a, b), c), name="y")
    return aig


@pytest.fixture(scope="session")
def tiny_space() -> SequenceSpace:
    """A short sequence space so optimiser tests stay fast."""
    return SequenceSpace(sequence_length=4)


@pytest.fixture(scope="session")
def adder_evaluator(small_adder) -> QoREvaluator:
    """A shared QoR evaluator over the small adder (session-scoped cache)."""
    return QoREvaluator(small_adder)
