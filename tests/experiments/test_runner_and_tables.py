"""Tests for the experiment runner, QoR table and best-known proxy."""

import numpy as np
import pytest

from repro.bo.base import OptimisationResult
from repro.experiments import (
    ExperimentConfig,
    available_methods,
    best_known_reference,
    build_qor_table,
    make_optimiser,
    run_experiment,
    run_method_on_circuit,
)
from repro.experiments.runner import group_results
from repro.bo.space import SequenceSpace
from repro.circuits import make_adder
from repro.qor import QoREvaluator


def _fake_result(method, circuit, seed, improvement, area=10, delay=3):
    history = [improvement - 1.0, improvement]
    return OptimisationResult(
        method=method, circuit=circuit, seed=seed,
        best_sequence=("balance",), best_qor=2.0 - improvement / 50.0,
        best_improvement=improvement, best_area=area, best_delay=delay,
        num_evaluations=len(history), history=history,
        best_trajectory=[max(history[:i + 1]) for i in range(len(history))],
        evaluated_points=[(area + 1, delay), (area, delay)],
    )


class TestMethodRegistry:
    def test_all_methods_registered(self):
        keys = available_methods()
        for expected in ("boils", "sbo", "rs", "greedy", "ga", "a2c", "ppo", "graph-rl"):
            assert expected in keys

    def test_make_optimiser_applies_overrides(self):
        space = SequenceSpace(sequence_length=3)
        optimiser = make_optimiser("boils", space=space, seed=4, num_initial=2)
        assert optimiser.space.sequence_length == 3
        assert optimiser.seed == 4
        assert optimiser.num_initial == 2

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_optimiser("annealing")


class TestConfig:
    def test_defaults_and_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUDGET", "33")
        monkeypatch.setenv("REPRO_SEEDS", "4")
        config = ExperimentConfig()
        assert config.budget == 33
        assert config.num_seeds == 4

    def test_paper_scale(self):
        config = ExperimentConfig.paper_scale()
        assert config.budget == 200
        assert config.num_seeds == 5
        assert config.sequence_length == 20

    def test_quick(self):
        config = ExperimentConfig.quick()
        assert config.budget <= 10
        assert config.num_seeds == 1


class TestRunner:
    def test_single_cell(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("rs",))
        result = run_method_on_circuit("rs", "adder", config, seed=0)
        assert result.method == "RS"
        assert result.circuit == "adder"
        assert result.num_evaluations == config.budget

    def test_grid_produces_all_cells(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("rs", "greedy"))
        results = run_experiment(config)
        assert len(results) == 2 * config.num_seeds
        grouped = group_results(results)
        assert set(grouped) == {"RS", "Greedy"}

    def test_progress_callback(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("rs",))
        messages = []
        run_experiment(config, progress=messages.append)
        assert messages and "RS" in messages[0]


class TestQoRTable:
    def test_table_from_fake_results(self):
        results = [
            _fake_result("BOiLS", "adder", 0, 10.0),
            _fake_result("BOiLS", "adder", 1, 12.0),
            _fake_result("RS", "adder", 0, 8.0),
            _fake_result("RS", "adder", 1, 6.0),
            _fake_result("BOiLS", "div", 0, 20.0),
            _fake_result("RS", "div", 0, 25.0),
        ]
        table = build_qor_table(results)
        assert table.value("adder", "BOiLS") == pytest.approx(11.0)
        assert table.value("adder", "RS") == pytest.approx(7.0)
        assert table.winners()["adder"] == "BOiLS"
        assert table.winners()["div"] == "RS"
        assert table.wins("BOiLS") == 1
        averages = table.row_average()
        assert averages["BOiLS"] == pytest.approx((11.0 + 20.0) / 2)

    def test_table_rendering(self):
        results = [_fake_result("BOiLS", "adder", 0, 10.0),
                   _fake_result("RS", "adder", 0, 5.0)]
        table = build_qor_table(results)
        text = table.to_text()
        assert "Adder" in text and "BOiLS" in text and "Average" in text
        csv = table.to_csv()
        assert csv.splitlines()[0] == "circuit,method,mean_improvement,std_improvement"
        assert "adder,BOiLS," in csv

    def test_std_recorded(self):
        results = [_fake_result("RS", "adder", 0, 4.0), _fake_result("RS", "adder", 1, 8.0)]
        table = build_qor_table(results)
        assert table.stds["adder"]["RS"] == pytest.approx(2.0)


class TestBestKnown:
    def test_best_known_reference(self):
        evaluator = QoREvaluator(make_adder(4))
        space = SequenceSpace(sequence_length=3)
        reference = best_known_reference(evaluator, space=space, budget_per_objective=8)
        assert reference.best_area > 0
        assert reference.best_delay > 0
        assert len(reference.best_area_sequence) <= 3
        # The single-objective area search should do at least as well on
        # area as the single-objective delay search does on area... not
        # guaranteed in general, but both must be valid evaluations:
        assert np.isfinite(reference.best_area_qor_improvement)
        assert np.isfinite(reference.best_delay_qor_improvement)

    def test_best_known_columns_in_table(self):
        evaluator = QoREvaluator(make_adder(4))
        space = SequenceSpace(sequence_length=3)
        reference = best_known_reference(evaluator, space=space, budget_per_objective=6)
        results = [_fake_result("BOiLS", "adder", 0, 10.0)]
        table = build_qor_table(results, best_known={"adder": reference})
        assert "EPFL best (lvl)" in table.methods
        assert "EPFL best (count)" in table.methods
        assert "adder" in table.values
