"""Tests for the sample-efficiency, convergence, Pareto and figure modules."""

import numpy as np
import pytest

from repro.bo.base import OptimisationResult
from repro.experiments import (
    ExperimentConfig,
    build_qor_table,
    pareto_front,
    sample_efficiency_study,
)
from repro.experiments.convergence import build_convergence_curves, convergence_study
from repro.experiments.figures import (
    ascii_line_chart,
    render_figure1,
    render_figure2,
    render_figure3_convergence,
    render_figure3_pareto,
    render_figure3_table,
)
from repro.experiments.pareto import build_pareto_study, is_on_front
from repro.experiments.sample_efficiency import _evaluations_to_reach


def _result(method, circuit, trajectory, area=10, delay=3, seed=0):
    return OptimisationResult(
        method=method, circuit=circuit, seed=seed,
        best_sequence=("balance",), best_qor=1.8,
        best_improvement=trajectory[-1], best_area=area, best_delay=delay,
        num_evaluations=len(trajectory), history=list(trajectory),
        best_trajectory=[max(trajectory[:i + 1]) for i in range(len(trajectory))],
        evaluated_points=[(area, delay)] * len(trajectory),
    )


class TestParetoFront:
    def test_front_of_simple_points(self):
        points = [(5, 5), (3, 7), (7, 3), (6, 6), (3, 8)]
        front = pareto_front(points)
        assert set(front) == {(5, 5), (3, 7), (7, 3)}

    def test_duplicates_collapse(self):
        assert pareto_front([(1, 1), (1, 1)]) == [(1, 1)]

    def test_single_point(self):
        assert pareto_front([(4, 2)]) == [(4, 2)]

    def test_dominated_point_not_on_front(self):
        front = pareto_front([(1, 1), (2, 2)])
        assert is_on_front((1, 1), front)
        assert not is_on_front((2, 2), front)

    def test_empty(self):
        assert pareto_front([]) == []


class TestParetoStudy:
    def test_on_front_percentages(self):
        results = [
            _result("BOiLS", "div", [10.0], area=5, delay=5, seed=0),
            _result("BOiLS", "div", [9.0], area=6, delay=4, seed=1),
            _result("RS", "div", [5.0], area=9, delay=9, seed=0),
            _result("RS", "div", [6.0], area=8, delay=8, seed=1),
        ]
        study = build_pareto_study(results)
        pct = study.on_front_percentages()
        assert pct["BOiLS"] == pytest.approx(100.0)
        assert pct["RS"] == pytest.approx(0.0)

    def test_references_join_the_front(self):
        results = [_result("BOiLS", "div", [10.0], area=5, delay=5)]
        study = build_pareto_study(results, references={"div": {"init": (2, 2)}})
        assert (2, 2) in study.fronts["div"]
        assert study.on_front_percentages()["BOiLS"] == pytest.approx(0.0)

    def test_csv_rendering(self):
        results = [_result("BOiLS", "div", [10.0], area=5, delay=5)]
        study = build_pareto_study(results)
        csv = study.to_csv()
        assert csv.splitlines()[0] == "circuit,method,area,delay,on_front"
        assert "div,BOiLS,5,5,1" in csv

    def test_end_to_end_small_study(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("rs",))
        from repro.experiments import pareto_study

        study = pareto_study(config, circuits=("adder",))
        assert study.circuits == ["adder"]
        assert "RS" in study.methods


class TestConvergence:
    def test_mean_trajectories_padded(self):
        results = [
            _result("RS", "adder", [1.0, 2.0, 3.0], seed=0),
            _result("RS", "adder", [2.0], seed=1),
        ]
        curves = build_convergence_curves(results)
        curve = curves.curve("adder", "RS")
        assert len(curve) == 3
        assert curve[0] == pytest.approx(1.5)
        assert curve[-1] == pytest.approx(2.5)

    def test_final_values_match_table(self):
        results = [
            _result("RS", "adder", [1.0, 4.0], seed=0),
            _result("BOiLS", "adder", [2.0, 6.0], seed=0),
        ]
        curves = build_convergence_curves(results)
        finals = curves.final_values()
        table = build_qor_table(results)
        assert finals["adder"]["RS"] == pytest.approx(table.value("adder", "RS"))
        assert finals["adder"]["BOiLS"] == pytest.approx(table.value("adder", "BOiLS"))

    def test_csv(self):
        results = [_result("RS", "adder", [1.0, 2.0])]
        csv = build_convergence_curves(results).to_csv()
        assert "adder,RS,1," in csv

    def test_end_to_end_small_study(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("rs", "greedy"))
        curves = convergence_study(config, circuits=("adder",))
        assert set(curves.curves["adder"]) == {"RS", "Greedy"}


class TestSampleEfficiency:
    def test_evaluations_to_reach(self):
        assert _evaluations_to_reach([1.0, 2.0, 3.0], target=2.5, fallback=99) == 3
        assert _evaluations_to_reach([1.0, 2.0], target=5.0, fallback=99) == 99
        assert _evaluations_to_reach([5.0], target=2.0, fallback=99) == 1

    def test_small_study_runs(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("boils", "rs"))
        study = sample_efficiency_study(config, extended_budget=10)
        assert study.reference_method == "BOiLS"
        assert "RS" in study.average_evaluations
        assert study.average_evaluations["RS"] <= 10
        assert np.isfinite(study.speedup_over("RS"))
        assert "adder" in study.targets
        text = study.to_text()
        assert "Sample efficiency" in text


class TestFigureRendering:
    def test_ascii_chart_contains_legend(self):
        chart = ascii_line_chart({"a": [0, 1, 2], "b": [2, 1, 0]}, title="demo")
        assert "demo" in chart and "a" in chart and "max=" in chart

    def test_ascii_chart_empty(self):
        assert ascii_line_chart({}, title="empty") == "empty"

    def test_render_figure3_table(self):
        table = build_qor_table([_result("RS", "adder", [1.0, 2.0])])
        text = render_figure3_table(table)
        assert "Figure 3 (top)" in text

    def test_render_figure3_convergence_and_pareto(self):
        results = [_result("RS", "div", [1.0, 2.0], area=4, delay=4)]
        curves = build_convergence_curves(results)
        study = build_pareto_study(results)
        assert "Figure 3 (middle)" in render_figure3_convergence(curves)
        assert "Figure 3 (bottom)" in render_figure3_pareto(study)

    def test_render_figure1(self):
        config = ExperimentConfig.quick(circuits=("adder",), methods=("boils", "rs"))
        study = sample_efficiency_study(config, extended_budget=6)
        assert "Figure 1" in render_figure1(study)

    def test_render_figure2(self, rng):
        x = np.linspace(0, 1, 10)
        prior = rng.normal(size=(3, 10))
        posterior = rng.normal(size=(3, 10))
        text = render_figure2(x, prior, posterior)
        assert "Figure 2 (left)" in text and "Figure 2 (right)" in text
