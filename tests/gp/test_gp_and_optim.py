"""Tests for GP regression and the projected Adam optimiser."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, SquaredExponentialKernel
from repro.gp.kernels.ssk import SubsequenceStringKernel
from repro.gp.optim import (
    ProjectedAdam,
    finite_difference_gradient,
    minimise_with_projected_adam,
)


@pytest.fixture()
def sine_data(rng):
    X = np.linspace(0, 2 * np.pi, 25)[:, None]
    y = np.sin(X).ravel() + 0.01 * rng.normal(size=25)
    return X, y


class TestProjectedAdam:
    def test_step_moves_against_gradient(self):
        opt = ProjectedAdam(lower=np.zeros(2), upper=np.ones(2), learning_rate=0.1)
        x = np.array([0.5, 0.5])
        new = opt.step(x, np.array([1.0, -1.0]))
        assert new[0] < 0.5 and new[1] > 0.5

    def test_projection_onto_box(self):
        opt = ProjectedAdam(lower=np.zeros(2), upper=np.ones(2), learning_rate=10.0)
        new = opt.step(np.array([0.01, 0.99]), np.array([1.0, -1.0]))
        assert new[0] >= 0.0 and new[1] <= 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ProjectedAdam(lower=np.ones(2), upper=np.zeros(2))
        with pytest.raises(ValueError):
            ProjectedAdam(lower=np.zeros(2), upper=np.ones(3))

    def test_reset_clears_state(self):
        opt = ProjectedAdam(lower=np.zeros(1), upper=np.ones(1))
        opt.step(np.array([0.5]), np.array([1.0]))
        opt.reset()
        assert opt._t == 0

    def test_minimise_quadratic(self):
        lower, upper = np.zeros(2), np.ones(2)
        target = np.array([0.3, 0.8])

        def objective(x):
            return float(np.sum((x - target) ** 2))

        best_x, best_val = minimise_with_projected_adam(
            objective, np.array([0.9, 0.1]), lower, upper, num_steps=200,
            learning_rate=0.05)
        assert best_val < 1e-2
        assert np.allclose(best_x, target, atol=0.1)

    def test_minimise_respects_bounds_when_optimum_outside(self):
        lower, upper = np.zeros(1), np.ones(1)

        def objective(x):
            return float((x[0] - 2.0) ** 2)

        best_x, _ = minimise_with_projected_adam(objective, np.array([0.2]),
                                                 lower, upper, num_steps=100)
        assert best_x[0] <= 1.0
        assert best_x[0] > 0.8

    def test_finite_difference_gradient(self):
        def objective(x):
            return float(x[0] ** 2 + 3 * x[1])

        grad = finite_difference_gradient(
            objective, np.array([0.5, 0.5]), np.zeros(2), np.ones(2))
        assert grad[0] == pytest.approx(1.0, abs=1e-3)
        assert grad[1] == pytest.approx(3.0, abs=1e-3)


class TestGaussianProcess:
    def test_posterior_interpolates_training_data(self, sine_data):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1), noise_variance=1e-6)
        gp.fit(X, y)
        mean, std = gp.predict(X)
        assert np.max(np.abs(mean - y)) < 0.05
        assert np.all(std < 0.2)

    def test_uncertainty_grows_away_from_data(self, sine_data):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1)).fit(X, y)
        _, std_near = gp.predict(np.array([[np.pi]]))
        _, std_far = gp.predict(np.array([[30.0]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        gp = GaussianProcess(SquaredExponentialKernel(1))
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 1)))

    def test_mismatched_xy_rejected(self):
        gp = GaussianProcess(SquaredExponentialKernel(1))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 1)), np.zeros(2))

    def test_nll_decreases_with_better_lengthscale(self, sine_data):
        X, y = sine_data
        bad = GaussianProcess(SquaredExponentialKernel(1, lengthscale=50.0)).fit(X, y)
        good = GaussianProcess(SquaredExponentialKernel(1, lengthscale=1.5)).fit(X, y)
        assert good.negative_log_marginal_likelihood() < bad.negative_log_marginal_likelihood()

    def test_fit_hyperparameters_improves_nll(self, sine_data):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1, lengthscale=20.0))
        gp.fit(X, y)
        before = gp.negative_log_marginal_likelihood()
        gp.fit_hyperparameters(X, y, num_steps=25, learning_rate=0.2)
        after = gp.negative_log_marginal_likelihood()
        assert after <= before

    def test_fit_hyperparameters_subset(self, sine_data):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1))
        original_variance = gp.kernel.get_params()["variance"]
        gp.fit_hyperparameters(X, y, num_steps=3, param_names=["lengthscale_0"])
        assert gp.kernel.get_params()["variance"] == pytest.approx(original_variance)

    def test_posterior_covariance_shrinks_at_data(self, sine_data):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1), noise_variance=1e-6).fit(X, y)
        cov = gp.posterior_covariance(X[:5])
        assert np.all(np.diag(cov) < 0.05)

    def test_prior_and_posterior_samples_shapes(self, sine_data, rng):
        X, y = sine_data
        gp = GaussianProcess(SquaredExponentialKernel(1)).fit(X, y)
        grid = np.linspace(0, 2 * np.pi, 11)[:, None]
        prior = gp.sample_prior(grid, num_samples=4, rng=rng)
        posterior = gp.sample_posterior(grid, num_samples=4, rng=rng)
        assert prior.shape == (4, 11)
        assert posterior.shape == (4, 11)

    def test_normalisation_handles_constant_targets(self):
        gp = GaussianProcess(SquaredExponentialKernel(1))
        X = np.linspace(0, 1, 5)[:, None]
        gp.fit(X, np.full(5, 3.0))
        mean, _ = gp.predict(X)
        assert np.allclose(mean, 3.0, atol=1e-3)

    def test_gp_with_ssk_kernel_on_sequences(self, rng):
        kernel = SubsequenceStringKernel(max_subsequence_length=2)
        gp = GaussianProcess(kernel)
        X = rng.integers(0, 11, size=(15, 8))
        y = (X[:, 0] == 3).astype(float) + 0.1 * rng.normal(size=15)
        gp.fit(X, y)
        mean, std = gp.predict(X[:3])
        assert mean.shape == (3,)
        assert np.all(std >= 0)

    def test_ssk_hyperparameter_fit_stays_in_box(self, rng):
        kernel = SubsequenceStringKernel(max_subsequence_length=2)
        gp = GaussianProcess(kernel)
        X = rng.integers(0, 11, size=(10, 6))
        y = rng.normal(size=10)
        gp.fit_hyperparameters(X, y, num_steps=3,
                               param_names=["theta_match", "theta_gap"])
        params = kernel.get_params()
        assert 0 < params["theta_match"] <= 1.0
        assert 0 < params["theta_gap"] <= 1.0
