"""Tests for the continuous and categorical kernels."""

import numpy as np
import pytest

from repro.gp.kernels import (
    Matern52Kernel,
    OverlapKernel,
    SquaredExponentialKernel,
    TransformedOverlapKernel,
)


@pytest.fixture()
def continuous_data(rng):
    return rng.normal(size=(12, 3))


@pytest.fixture()
def sequence_data(rng):
    return rng.integers(0, 11, size=(10, 8))


class TestKernelInterface:
    def test_param_management(self):
        kernel = SquaredExponentialKernel(input_dim=2)
        params = kernel.get_params()
        assert "variance" in params and "lengthscale_0" in params
        kernel.set_params(variance=2.0)
        assert kernel.get_params()["variance"] == pytest.approx(2.0)

    def test_set_params_clips_to_bounds(self):
        kernel = SquaredExponentialKernel(input_dim=1)
        kernel.set_params(variance=1e9)
        assert kernel.get_params()["variance"] <= 1e3

    def test_unknown_param_rejected(self):
        kernel = SquaredExponentialKernel(input_dim=1)
        with pytest.raises(KeyError):
            kernel.set_params(nope=1.0)

    def test_param_vector_roundtrip(self):
        kernel = Matern52Kernel(input_dim=2)
        vector = kernel.param_vector()
        kernel.set_param_vector(vector * 1.5)
        assert np.allclose(kernel.param_vector(), np.clip(
            vector * 1.5, *kernel.bounds_arrays()))

    def test_param_vector_wrong_length(self):
        kernel = Matern52Kernel(input_dim=1)
        with pytest.raises(ValueError):
            kernel.set_param_vector(np.array([1.0]))


class TestContinuousKernels:
    @pytest.mark.parametrize("kernel_cls", [SquaredExponentialKernel, Matern52Kernel])
    def test_psd_and_symmetric(self, kernel_cls, continuous_data):
        kernel = kernel_cls(input_dim=continuous_data.shape[1])
        gram = kernel(continuous_data)
        assert np.allclose(gram, gram.T)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    @pytest.mark.parametrize("kernel_cls", [SquaredExponentialKernel, Matern52Kernel])
    def test_diagonal_equals_variance(self, kernel_cls, continuous_data):
        kernel = kernel_cls(input_dim=continuous_data.shape[1], variance=1.7)
        gram = kernel(continuous_data)
        assert np.allclose(np.diag(gram), 1.7)
        assert np.allclose(kernel.diag(continuous_data), 1.7)

    def test_se_decays_with_distance(self):
        kernel = SquaredExponentialKernel(input_dim=1, lengthscale=1.0)
        x = np.array([[0.0], [0.5], [5.0]])
        gram = kernel(x)
        assert gram[0, 1] > gram[0, 2]

    def test_cross_covariance_shape(self, continuous_data):
        kernel = Matern52Kernel(input_dim=3)
        other = continuous_data[:4] + 1.0
        assert kernel(continuous_data, other).shape == (12, 4)

    def test_lengthscale_effect(self):
        x = np.array([[0.0], [1.0]])
        short = SquaredExponentialKernel(input_dim=1, lengthscale=0.1)
        long = SquaredExponentialKernel(input_dim=1, lengthscale=10.0)
        assert short(x)[0, 1] < long(x)[0, 1]


class TestCategoricalKernels:
    def test_overlap_identity(self, sequence_data):
        kernel = OverlapKernel(sequence_length=sequence_data.shape[1])
        gram = kernel(sequence_data)
        assert np.allclose(np.diag(gram), 1.0)

    def test_overlap_counts_matches(self):
        kernel = OverlapKernel(sequence_length=4)
        a = np.array([[0, 1, 2, 3]])
        b = np.array([[0, 1, 9, 9]])
        assert kernel(a, b)[0, 0] == pytest.approx(0.5)

    def test_overlap_disjoint_is_zero(self):
        kernel = OverlapKernel(sequence_length=3)
        a = np.array([[0, 0, 0]])
        b = np.array([[1, 1, 1]])
        assert kernel(a, b)[0, 0] == pytest.approx(0.0)

    def test_transformed_overlap_diag_is_variance(self, sequence_data):
        kernel = TransformedOverlapKernel(sequence_length=sequence_data.shape[1],
                                          variance=2.5)
        gram = kernel(sequence_data)
        assert np.allclose(np.diag(gram), 2.5)
        assert np.allclose(kernel.diag(sequence_data), 2.5)

    def test_transformed_overlap_monotone_in_matches(self):
        kernel = TransformedOverlapKernel(sequence_length=4, lengthscale=3.0)
        a = np.array([[0, 1, 2, 3]])
        closer = np.array([[0, 1, 2, 9]])
        farther = np.array([[0, 9, 9, 9]])
        assert kernel(a, closer)[0, 0] > kernel(a, farther)[0, 0]

    def test_transformed_overlap_psd(self, sequence_data):
        kernel = TransformedOverlapKernel(sequence_length=sequence_data.shape[1])
        eigenvalues = np.linalg.eigvalsh(kernel(sequence_data))
        assert eigenvalues.min() > -1e-8
