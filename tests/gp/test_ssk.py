"""Tests for the sub-sequence string kernel, including the paper's Table I."""

import numpy as np
import pytest

from repro.gp.kernels.ssk import (
    SubsequenceStringKernel,
    exact_kernel_value,
    ssk_diag,
    ssk_gram,
    subsequence_contribution,
)


# The paper's Table I uses two-letter mnemonics; any hashable symbols work.
SEQ_1 = ["Rw", "Rf", "Ds", "So", "Ds", "Bl", "Rw"]   # RwRfDsSoDsBlRw
SEQ_2 = ["Rw", "Rf", "Ds", "Fr", "So", "Bl", "Rw"]   # RwRfDsFrSoBlRw
SEQ_3 = ["Rw", "Rf", "Ds", "Fr", "Bl", "So", "Bl"]   # RwRfDsFrBlSoBl

U_1 = ["Rw", "Rf", "Ds", "Bl", "Rw"]                 # RwRfDsBlRw
U_2 = ["Rw", "Rf", "Ds", "Fr"]                        # RwRfDsFr
U_3 = ["Rw", "Rf"]                                    # RwRf


class TestTableI:
    """Reproduce every entry of the paper's Table I symbolically."""

    @pytest.mark.parametrize("theta_m,theta_g", [(0.9, 0.7), (0.5, 0.5), (1.0, 1.0)])
    def test_row1(self, theta_m, theta_g):
        assert subsequence_contribution(U_1, SEQ_1, theta_m, theta_g) == pytest.approx(
            2 * theta_m ** 5 * theta_g ** 2)
        assert subsequence_contribution(U_2, SEQ_1, theta_m, theta_g) == pytest.approx(0.0)
        assert subsequence_contribution(U_3, SEQ_1, theta_m, theta_g) == pytest.approx(
            theta_m ** 2)

    @pytest.mark.parametrize("theta_m,theta_g", [(0.9, 0.7), (0.5, 0.5)])
    def test_row2(self, theta_m, theta_g):
        assert subsequence_contribution(U_1, SEQ_2, theta_m, theta_g) == pytest.approx(
            theta_m ** 5 * theta_g ** 2)
        assert subsequence_contribution(U_2, SEQ_2, theta_m, theta_g) == pytest.approx(
            theta_m ** 4)
        assert subsequence_contribution(U_3, SEQ_2, theta_m, theta_g) == pytest.approx(
            theta_m ** 2)

    @pytest.mark.parametrize("theta_m,theta_g", [(0.9, 0.7), (0.5, 0.5)])
    def test_row3(self, theta_m, theta_g):
        assert subsequence_contribution(U_1, SEQ_3, theta_m, theta_g) == pytest.approx(0.0)
        assert subsequence_contribution(U_2, SEQ_3, theta_m, theta_g) == pytest.approx(
            theta_m ** 4)
        assert subsequence_contribution(U_3, SEQ_3, theta_m, theta_g) == pytest.approx(
            theta_m ** 2)

    def test_contribution_edge_cases(self):
        assert subsequence_contribution([], SEQ_1, 0.5, 0.5) == 0.0
        assert subsequence_contribution(["Rw"] * 10, ["Rw"], 0.5, 0.5) == 0.0

    def test_kernel_object_contribution_method(self):
        kernel = SubsequenceStringKernel(theta_match=0.8, theta_gap=0.6)
        assert kernel.contribution(U_3, SEQ_1) == pytest.approx(0.8 ** 2)


class TestDpAgainstBruteForce:
    @pytest.mark.parametrize("max_length", [1, 2, 3])
    def test_gram_matches_feature_enumeration(self, max_length, rng):
        alphabet = list(range(3))
        X = rng.integers(0, 3, size=(4, 6))
        gram = ssk_gram(X, X, 0.7, 0.4, max_length)
        for i in range(4):
            for j in range(4):
                expected = exact_kernel_value(X[i], X[j], 0.7, 0.4, max_length, alphabet)
                assert gram[i, j] == pytest.approx(expected)

    def test_diag_matches_gram(self, rng):
        X = rng.integers(0, 5, size=(6, 7))
        gram = ssk_gram(X, X, 0.6, 0.5, 3)
        diag = ssk_diag(X, 0.6, 0.5, 3)
        assert np.allclose(diag, np.diag(gram))

    def test_cross_gram_shape(self, rng):
        X = rng.integers(0, 5, size=(4, 6))
        Y = rng.integers(0, 5, size=(7, 6))
        assert ssk_gram(X, Y, 0.5, 0.5, 2).shape == (4, 7)


class TestKernelProperties:
    def test_symmetry_and_psd(self, rng):
        kernel = SubsequenceStringKernel(max_subsequence_length=3)
        X = rng.integers(0, 11, size=(12, 10))
        gram = kernel(X)
        assert np.allclose(gram, gram.T)
        assert np.linalg.eigvalsh(gram).min() > -1e-8

    def test_normalised_diag_is_variance(self, rng):
        kernel = SubsequenceStringKernel(normalize=True, variance=1.0)
        X = rng.integers(0, 11, size=(8, 10))
        assert np.allclose(np.diag(kernel(X)), 1.0)
        assert np.allclose(kernel.diag(X), 1.0)

    def test_identical_sequences_have_max_similarity(self, rng):
        kernel = SubsequenceStringKernel(normalize=True)
        X = rng.integers(0, 11, size=(5, 10))
        gram = kernel(X)
        assert np.all(gram <= 1.0 + 1e-9)
        assert np.allclose(np.diag(gram), 1.0)

    def test_shared_subsequences_increase_similarity(self):
        kernel = SubsequenceStringKernel(normalize=True)
        base = np.array([[0, 1, 2, 3, 4, 5]])
        similar = np.array([[0, 1, 2, 3, 4, 6]])
        different = np.array([[6, 7, 8, 9, 10, 5]])
        assert kernel(base, similar)[0, 0] > kernel(base, different)[0, 0]

    def test_unnormalised_diag(self, rng):
        kernel = SubsequenceStringKernel(normalize=False, variance=2.0)
        X = rng.integers(0, 11, size=(4, 8))
        assert np.allclose(kernel.diag(X), np.diag(kernel(X)))

    def test_gap_decay_penalises_spread_matches(self):
        kernel_tight = SubsequenceStringKernel(normalize=False, theta_match=0.9,
                                               theta_gap=0.1, max_subsequence_length=2)
        contiguous = np.array([[0, 1, 2, 2, 2, 2]])
        spread = np.array([[0, 2, 2, 2, 2, 1]])
        probe = np.array([[0, 1, 3, 3, 3, 3]])
        assert kernel_tight(contiguous, probe)[0, 0] > kernel_tight(spread, probe)[0, 0]

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            SubsequenceStringKernel(max_subsequence_length=0)

    def test_theta_bounds_enforced(self):
        kernel = SubsequenceStringKernel()
        kernel.set_params(theta_match=5.0, theta_gap=-1.0)
        params = kernel.get_params()
        assert params["theta_match"] <= 1.0
        assert params["theta_gap"] >= 1e-3
