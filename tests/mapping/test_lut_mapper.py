"""Tests for the K-LUT technology mapper."""

import pytest

from repro.aig.graph import AIG, lit_var
from repro.circuits import make_adder, make_barrel_shifter, make_multiplier
from repro.mapping import LutMapper, MappingResult, map_aig


class TestBasicMapping:
    def test_single_and_maps_to_one_lut(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.add_and(a, b))
        result = map_aig(aig)
        assert result.area == 1
        assert result.delay == 1

    def test_pi_only_output_needs_no_lut(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(a)
        result = map_aig(aig)
        assert result.area == 0
        assert result.delay == 0

    def test_constant_output(self):
        aig = AIG()
        aig.add_pi()
        aig.add_po(1)
        result = map_aig(aig)
        assert result.area == 0

    def test_six_input_cone_fits_one_lut(self):
        aig = AIG()
        pis = [aig.add_pi() for _ in range(6)]
        aig.add_po(aig.add_and_multi(pis))
        result = map_aig(aig, lut_size=6)
        assert result.area == 1
        assert result.delay == 1

    def test_seven_input_cone_needs_two_levels_or_more(self):
        aig = AIG()
        pis = [aig.add_pi() for _ in range(7)]
        aig.add_po(aig.add_and_multi(pis))
        result = map_aig(aig, lut_size=6)
        assert result.area >= 2
        assert result.delay >= 2


class TestCoverValidity:
    def _check_cover(self, aig, result: MappingResult):
        lut_roots = {lut.root for lut in result.luts}
        pi_set = set(aig.pis)
        # Every PO driven by an AND node must be a LUT root.
        for po in aig.pos:
            var = lit_var(po)
            if aig.is_and(var):
                assert var in lut_roots
        # Every LUT leaf must be a PI, a constant or another LUT root.
        for lut in result.luts:
            assert len(lut.leaves) <= result.lut_size
            for leaf in lut.leaves:
                assert leaf == 0 or leaf in pi_set or leaf in lut_roots

    def test_adder_cover_is_valid(self, small_adder):
        self._check_cover(small_adder, map_aig(small_adder))

    def test_multiplier_cover_is_valid(self, small_multiplier):
        self._check_cover(small_multiplier, map_aig(small_multiplier))

    def test_lut_size_respected(self, small_adder):
        for k in (3, 4, 6):
            result = map_aig(small_adder, lut_size=k)
            assert all(len(lut.leaves) <= k for lut in result.luts)


class TestQuality:
    def test_adder_depth_is_sublinear(self):
        """A 16-bit adder must map well below its AND-depth (regression)."""
        aig = make_adder(16)
        result = map_aig(aig, lut_size=6)
        assert result.delay <= 12
        assert result.area <= 60

    def test_barrel_shifter_is_shallow(self):
        result = map_aig(make_barrel_shifter(16), lut_size=6)
        assert result.delay <= 4

    def test_smaller_k_needs_more_area(self, small_multiplier):
        area_k3 = map_aig(small_multiplier, lut_size=3).area
        area_k6 = map_aig(small_multiplier, lut_size=6).area
        assert area_k6 <= area_k3

    def test_delay_monotone_in_k(self, small_adder):
        delay_k3 = map_aig(small_adder, lut_size=3).delay
        delay_k6 = map_aig(small_adder, lut_size=6).delay
        assert delay_k6 <= delay_k3


class TestMapperObject:
    def test_invalid_lut_size(self):
        with pytest.raises(ValueError):
            LutMapper(lut_size=1)

    def test_as_dict(self, small_adder):
        result = map_aig(small_adder)
        d = result.as_dict()
        assert d["area"] == result.area
        assert d["delay"] == result.delay
        assert d["lut_size"] == 6

    def test_mapper_is_reusable(self, small_adder, small_multiplier):
        mapper = LutMapper(lut_size=6)
        first = mapper.map(small_adder)
        second = mapper.map(small_multiplier)
        third = mapper.map(small_adder)
        assert first.area == third.area
        assert first.delay == third.delay
        assert second.area != 0

    def test_determinism(self, small_adder):
        assert map_aig(small_adder).as_dict() == map_aig(small_adder).as_dict()
