"""Regenerate ``substrate_golden.json`` from the substrate implementation.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate_golden.py

The golden file pins the *observable* outputs of the synthesis substrate
(cut enumeration, LUT mapping, QoR evaluation) on seeded circuits and
sequences.  It was first generated from the pre-optimisation (PR 1) code
and must remain stable under performance reworks: the hot-path overhaul
keeps all of these values bit-identical.  Only integer outputs and
pure-Python float arithmetic land here, so the file is portable across
BLAS/numpy builds.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).parent / "substrate_golden.json"

CIRCUITS = [("adder", 4), ("adder", 8), ("multiplier", 4), ("sqrt", 4)]
SEQUENCES = [
    ["balance", "rewrite", "refactor", "balance", "rewrite", "rewrite -z",
     "balance", "refactor -z", "rewrite -z", "balance"],  # resyn2
    ["rewrite", "resub", "fraig", "dsdb"],
    ["refactor", "balance", "sopb", "rewrite -z"],
    ["blut", "resub -z", "rewrite", "balance"],
    ["fraig", "refactor -z", "dsdb", "resub"],
]


def _cuts_digest(aig, k: int, max_cuts: int, include_trivial: bool) -> str:
    from repro.aig.cuts import enumerate_cuts

    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts, include_trivial=include_trivial)
    digest = hashlib.sha256()
    for var in sorted(cuts):
        digest.update(str(var).encode())
        for cut in cuts[var]:
            digest.update(repr(tuple(cut.leaves)).encode())
    return digest.hexdigest()


def _depth_cuts_digest(aig, k: int, max_cuts: int) -> str:
    from repro.aig.cuts import enumerate_cuts

    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts, include_trivial=False,
                          depths=aig.levels())
    digest = hashlib.sha256()
    for var in sorted(cuts):
        digest.update(str(var).encode())
        for cut in cuts[var]:
            digest.update(repr(tuple(cut.leaves)).encode())
    return digest.hexdigest()


def _mapping_entry(aig):
    from repro.mapping.lut_mapper import LutMapper

    result = LutMapper(lut_size=6).map(aig)
    digest = hashlib.sha256()
    for lut in result.luts:
        digest.update(repr((lut.root, tuple(lut.leaves))).encode())
    return {"area": result.area, "delay": result.delay, "luts": digest.hexdigest()}


def main() -> None:
    from repro.circuits import get_circuit
    from repro.qor import QoREvaluator

    golden = {"circuits": {}}
    for name, width in CIRCUITS:
        aig = get_circuit(name, width=width)
        key = f"{name}-{width}"
        evaluator = QoREvaluator(aig, lut_size=6)
        evaluations = []
        for sequence in SEQUENCES:
            record = evaluator.evaluate(sequence)
            evaluations.append(
                {
                    "sequence": list(record.sequence),
                    "area": record.area,
                    "delay": record.delay,
                    "qor": record.qor,
                    "qor_improvement": record.qor_improvement,
                }
            )
        golden["circuits"][key] = {
            "stats": aig.stats(),
            "cuts_k4": _cuts_digest(aig, k=4, max_cuts=8, include_trivial=False),
            "cuts_k6_trivial": _cuts_digest(aig, k=6, max_cuts=8, include_trivial=True),
            "cuts_k6_depth": _depth_cuts_digest(aig, k=6, max_cuts=8),
            "mapping": _mapping_entry(aig),
            "reference_area": evaluator.reference_area,
            "reference_delay": evaluator.reference_delay,
            "evaluations": evaluations,
        }

    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
