"""Golden equivalence suite for the hot-path overhaul.

Two layers of protection:

* **Stored goldens** (``substrate_golden.json``, generated from the
  pre-optimisation code by ``generate_golden.py``): cut-enumeration
  digests, LUT mappings and QoR evaluations on seeded circuits must stay
  bit-identical across performance reworks.  Only integer outputs and
  pure-Python float arithmetic are pinned, so the file is portable.
* **Runtime reference comparisons**: the optimised implementations are
  run side by side with the frozen reference copies
  (:mod:`repro.aig._reference`, :mod:`repro.mapping._reference`,
  :mod:`repro.gp.kernels._reference`) in the same environment, which
  checks bit-identity of float paths without baking BLAS-specific bits
  into the repository.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from unittest import mock

import numpy as np
import pytest

from repro.aig._reference import cut_cone_vars_reference, enumerate_cuts_reference
from repro.aig.cuts import Cut, cut_cone_vars, enumerate_cuts
from repro.bo.boils import BOiLS
from repro.bo.sbo import StandardBO
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit
from repro.gp.gp import GaussianProcess
from repro.gp.kernels._reference import (
    ReferenceSubsequenceStringKernel,
    ssk_diag_reference,
    ssk_gram_reference,
)
from repro.gp.kernels.ssk import SubsequenceStringKernel, ssk_diag, ssk_gram
from repro.mapping._reference import ReferenceLutMapper
from repro.mapping.lut_mapper import LutMapper
from repro.qor import QoREvaluator
from repro.synth.operations import apply_sequence

GOLDEN_PATH = Path(__file__).parent / "substrate_golden.json"

CIRCUITS = [("adder", 4), ("multiplier", 4), ("sqrt", 4)]


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _cuts_digest(aig, k, max_cuts, include_trivial, depths=None):
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts,
                          include_trivial=include_trivial, depths=depths)
    digest = hashlib.sha256()
    for var in sorted(cuts):
        digest.update(str(var).encode())
        for cut in cuts[var]:
            digest.update(repr(tuple(cut.leaves)).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Stored goldens (pinned against the pre-optimisation seed code)
# ----------------------------------------------------------------------
class TestStoredGoldens:
    def test_cut_enumeration_digests(self, golden):
        for key, entry in golden["circuits"].items():
            name, width = key.rsplit("-", 1)
            aig = get_circuit(name, width=int(width))
            assert _cuts_digest(aig, 4, 8, False) == entry["cuts_k4"], key
            assert _cuts_digest(aig, 6, 8, True) == entry["cuts_k6_trivial"], key
            assert _cuts_digest(aig, 6, 8, False,
                                depths=aig.levels()) == entry["cuts_k6_depth"], key

    def test_mappings_and_qor_evaluations(self, golden):
        for key, entry in golden["circuits"].items():
            name, width = key.rsplit("-", 1)
            aig = get_circuit(name, width=int(width))
            result = LutMapper(lut_size=6).map(aig)
            digest = hashlib.sha256()
            for lut in result.luts:
                digest.update(repr((lut.root, tuple(lut.leaves))).encode())
            assert result.area == entry["mapping"]["area"], key
            assert result.delay == entry["mapping"]["delay"], key
            assert digest.hexdigest() == entry["mapping"]["luts"], key

            evaluator = QoREvaluator(aig, lut_size=6)
            assert evaluator.reference_area == entry["reference_area"], key
            assert evaluator.reference_delay == entry["reference_delay"], key
            for expected in entry["evaluations"]:
                record = evaluator.evaluate(expected["sequence"])
                assert record.area == expected["area"], (key, expected["sequence"])
                assert record.delay == expected["delay"], (key, expected["sequence"])
                assert record.qor == expected["qor"], (key, expected["sequence"])
                assert record.qor_improvement == expected["qor_improvement"]


# ----------------------------------------------------------------------
# Bitset cuts and array-backed traversals vs the frozen reference
# ----------------------------------------------------------------------
class TestCutEquivalence:
    @pytest.mark.parametrize("name,width", CIRCUITS)
    def test_enumeration_bit_identical(self, name, width):
        aig = get_circuit(name, width=width)
        for kwargs in (
            dict(k=4, max_cuts=8, include_trivial=False),
            dict(k=6, max_cuts=8, include_trivial=True),
            dict(k=6, max_cuts=3, include_trivial=False),
            dict(k=6, max_cuts=8, include_trivial=False, depths=aig.levels()),
            dict(k=10, max_cuts=4, include_trivial=False),
        ):
            assert enumerate_cuts(aig, **kwargs) == \
                enumerate_cuts_reference(aig, **kwargs), (name, width, kwargs)

    def test_enumeration_bit_identical_on_wide_graph(self):
        """Graphs beyond the signature threshold exercise the folded path."""
        aig = get_circuit("multiplier", width=8)
        assert aig.num_vars > 512
        kwargs = dict(k=6, max_cuts=4, include_trivial=False)
        assert enumerate_cuts(aig, **kwargs) == enumerate_cuts_reference(aig, **kwargs)

    @pytest.mark.parametrize("name,width", CIRCUITS)
    def test_cone_walks_bit_identical(self, name, width):
        aig = get_circuit(name, width=width)
        cuts = enumerate_cuts(aig, k=6, max_cuts=4, include_trivial=False)
        for node in aig.and_nodes():
            for cut in cuts[node.var]:
                assert cut_cone_vars(aig, node.var, cut) == \
                    cut_cone_vars_reference(aig, node.var, cut)

    def test_cut_object_mask_semantics(self):
        assert Cut((1, 2)).merge(Cut((2, 3)), 3) == Cut((1, 2, 3))
        assert Cut((1, 2)).merge(Cut((3, 4)), 3) is None
        assert Cut((1, 2)).dominates(Cut((1, 2, 3)))
        assert not Cut((1, 4)).dominates(Cut((1, 2, 3)))
        assert Cut((3, 70, 500)).mask == (1 << 3) | (1 << 70) | (1 << 500)


class TestMapperEquivalence:
    @pytest.mark.parametrize("name,width", CIRCUITS)
    def test_mapping_bit_identical(self, name, width):
        base = get_circuit(name, width=width)
        for sequence in ([], ["balance", "rewrite"],
                         ["rewrite", "resub", "fraig", "dsdb"]):
            aig = apply_sequence(base, sequence) if sequence else base
            for lut_size in (4, 6):
                ours = LutMapper(lut_size=lut_size).map(aig)
                reference = ReferenceLutMapper(lut_size=lut_size).map(aig)
                assert ours.area == reference.area
                assert ours.delay == reference.delay
                assert ours.luts == reference.luts


# ----------------------------------------------------------------------
# SSK match-tensor caching vs the frozen reference DP
# ----------------------------------------------------------------------
class TestSskEquivalence:
    def test_gram_and_diag_bit_identical(self, rng):
        for _ in range(6):
            n = int(rng.integers(2, 20))
            m = int(rng.integers(2, 20))
            length = int(rng.integers(3, 15))
            X = rng.integers(0, 11, size=(n, length))
            Y = rng.integers(0, 11, size=(m, length))
            theta_m = float(rng.uniform(0.1, 1.0))
            theta_g = float(rng.uniform(0.1, 1.0))
            for ell in (1, 2, 3):
                assert np.array_equal(
                    ssk_gram(X, Y, theta_m, theta_g, ell),
                    ssk_gram_reference(X, Y, theta_m, theta_g, ell))
                assert np.array_equal(
                    ssk_diag(X, theta_m, theta_g, ell),
                    ssk_diag_reference(X, theta_m, theta_g, ell))

    def test_symmetric_kernel_upper_triangle_bit_identical(self, rng):
        """The cached symmetric Gram equals the reference on the upper
        triangle and diagonal bitwise, and repairs the reference's
        ulp-level asymmetry on the mirrored lower triangle."""
        for _ in range(6):
            n = int(rng.integers(3, 18))
            length = int(rng.integers(4, 15))
            X = rng.integers(0, 11, size=(n, length))
            kernel = SubsequenceStringKernel(theta_match=0.7, theta_gap=0.6)
            reference = ReferenceSubsequenceStringKernel(theta_match=0.7, theta_gap=0.6)
            gram = kernel(X)
            expected = reference(X)
            upper = np.triu_indices(n)
            assert np.array_equal(gram[upper], expected[upper])
            assert np.array_equal(gram, gram.T)
            assert np.allclose(gram, expected, rtol=1e-12, atol=1e-15)
            # Cross (prediction-path) Grams are fully bit-identical.
            Y = rng.integers(0, 11, size=(5, length))
            assert np.array_equal(kernel(X, Y), reference(X, Y))

    def test_cached_evaluations_are_stable(self, rng):
        X = rng.integers(0, 11, size=(10, 8))
        kernel = SubsequenceStringKernel()
        first = kernel(X)
        for _ in range(3):  # cache hits must return the same matrix
            assert np.array_equal(kernel(X), first)
        kernel.set_params(theta_match=0.31)  # theta_match-only change: cached sums
        second = kernel(X)
        reference = ReferenceSubsequenceStringKernel(theta_match=0.31, theta_gap=0.8)
        assert np.array_equal(second[np.triu_indices(10)],
                              reference(X)[np.triu_indices(10)])


# ----------------------------------------------------------------------
# Incremental GP conditioning vs full refactorisation
# ----------------------------------------------------------------------
class TestIncrementalGp:
    def test_extension_matches_full_factorisation(self, rng):
        for _ in range(5):
            n0 = int(rng.integers(5, 20))
            k = int(rng.integers(1, 5))
            X = rng.integers(0, 11, size=(n0 + k, 8))
            y = rng.normal(size=n0 + k)
            incremental = GaussianProcess(SubsequenceStringKernel())
            incremental.fit(X[:n0], y[:n0])
            incremental.update_or_fit(X, y)
            full = GaussianProcess(SubsequenceStringKernel()).fit(X, y)
            assert np.allclose(incremental._chol, full._chol, rtol=1e-9, atol=1e-12)
            probe = rng.integers(0, 11, size=(4, 8))
            mean_a, std_a = incremental.predict(probe)
            mean_b, std_b = full.predict(probe)
            assert np.allclose(mean_a, mean_b)
            assert np.allclose(std_a, std_b)

    def test_same_inputs_reuse_factor_bit_identical(self, rng):
        X = rng.integers(0, 11, size=(12, 8))
        y = rng.normal(size=12)
        gp = GaussianProcess(SubsequenceStringKernel()).fit(X, y)
        chol = gp._chol.copy()
        y2 = rng.normal(size=12)
        gp.update_or_fit(X, y2)  # same X: factor reused, targets re-solved
        assert np.array_equal(gp._chol, chol)
        fresh = GaussianProcess(SubsequenceStringKernel()).fit(X, y2)
        assert np.array_equal(gp._chol, fresh._chol)
        assert np.array_equal(gp._alpha, fresh._alpha)

    def test_changed_hyperparameters_force_full_fit(self, rng):
        X = rng.integers(0, 11, size=(10, 8))
        y = rng.normal(size=10)
        gp = GaussianProcess(SubsequenceStringKernel()).fit(X, y)
        gp.kernel.set_params(theta_match=0.123)
        X2 = np.vstack([X, rng.integers(0, 11, size=(2, 8))])
        y2 = np.append(y, rng.normal(size=2))
        with mock.patch.object(GaussianProcess, "_extend",
                               side_effect=AssertionError("must not extend")):
            gp.update_or_fit(X2, y2)
        assert gp._fit_params[0]["theta_match"] == pytest.approx(0.123)


# ----------------------------------------------------------------------
# Optimiser trajectories: optimised stack vs reference stack
# ----------------------------------------------------------------------
class TestTrajectoryEquivalence:
    @pytest.fixture(scope="class")
    def adder(self):
        return get_circuit("adder", width=4)

    @pytest.mark.parametrize("seed,fit_every", [(0, 1), (0, 2), (1, 2)])
    def test_boils_trajectory_identical(self, adder, seed, fit_every):
        space = SequenceSpace(sequence_length=4)
        kwargs = dict(space=space, seed=seed, num_initial=3,
                      local_search_queries=40, adam_steps=2, fit_every=fit_every)

        evaluator = QoREvaluator(adder)
        BOiLS(**kwargs).optimise(evaluator, budget=10)
        optimised = [(r.sequence, r.qor) for r in evaluator.history]

        evaluator = QoREvaluator(adder)
        with mock.patch("repro.bo.boils.SubsequenceStringKernel",
                        ReferenceSubsequenceStringKernel), \
             mock.patch.object(GaussianProcess, "update_or_fit", GaussianProcess.fit):
            BOiLS(**kwargs).optimise(evaluator, budget=10)
        reference = [(r.sequence, r.qor) for r in evaluator.history]
        assert optimised == reference

    @pytest.mark.parametrize("seed", [0, 5])
    def test_sbo_trajectory_identical_to_full_refits(self, adder, seed):
        space = SequenceSpace(sequence_length=4)
        kwargs = dict(space=space, seed=seed, num_initial=3, adam_steps=1,
                      fit_every=2)

        evaluator = QoREvaluator(adder)
        StandardBO(**kwargs).optimise(evaluator, budget=8)
        optimised = [(r.sequence, r.qor) for r in evaluator.history]

        evaluator = QoREvaluator(adder)
        with mock.patch.object(GaussianProcess, "update_or_fit", GaussianProcess.fit):
            StandardBO(**kwargs).optimise(evaluator, budget=8)
        reference = [(r.sequence, r.qor) for r in evaluator.history]
        assert optimised == reference
