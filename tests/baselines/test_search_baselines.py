"""Tests for random search, greedy and genetic-algorithm baselines."""

import numpy as np
import pytest

from repro.baselines import GeneticAlgorithm, GreedySearch, RandomSearch
from repro.baselines.genetic import GAConfig
from repro.bo.space import SequenceSpace
from repro.circuits import make_adder
from repro.qor import QoREvaluator


@pytest.fixture(scope="module")
def adder():
    return make_adder(4)


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=4)


class TestRandomSearch:
    def test_budget_respected(self, adder, space):
        result = RandomSearch(space=space, seed=0).optimise(QoREvaluator(adder), budget=10)
        assert result.num_evaluations == 10
        assert result.method == "RS"

    def test_all_evaluated_sequences_distinct(self, adder, space):
        evaluator = QoREvaluator(adder)
        RandomSearch(space=space, seed=1).optimise(evaluator, budget=15)
        sequences = [record.sequence for record in evaluator.history]
        assert len(sequences) == len(set(sequences))

    def test_uniform_variant(self, adder, space):
        result = RandomSearch(space=space, seed=2, use_latin_hypercube=False).optimise(
            QoREvaluator(adder), budget=6)
        assert result.num_evaluations == 6

    def test_invalid_budget(self, adder, space):
        with pytest.raises(ValueError):
            RandomSearch(space=space).optimise(QoREvaluator(adder), budget=0)

    def test_deterministic_given_seed(self, adder, space):
        a = RandomSearch(space=space, seed=9).optimise(QoREvaluator(adder), budget=8)
        b = RandomSearch(space=space, seed=9).optimise(QoREvaluator(adder), budget=8)
        assert a.history == b.history


class TestGreedy:
    def test_budget_respected(self, adder, space):
        result = GreedySearch(space=space, seed=0).optimise(QoREvaluator(adder), budget=12)
        assert result.num_evaluations <= 12
        assert result.method == "Greedy"

    def test_full_construction_cost(self, adder):
        """With enough budget greedy evaluates at most K*n sequences."""
        space = SequenceSpace(sequence_length=2)
        evaluator = QoREvaluator(adder)
        result = GreedySearch(space=space, seed=0).optimise(evaluator, budget=100)
        assert result.num_evaluations <= 2 * space.num_operations

    def test_prefix_growth(self, adder):
        space = SequenceSpace(sequence_length=3)
        evaluator = QoREvaluator(adder)
        GreedySearch(space=space, seed=0).optimise(evaluator, budget=200)
        lengths = [len(record.sequence) for record in evaluator.history]
        assert max(lengths) <= 3
        assert min(lengths) == 1

    def test_invalid_budget(self, adder, space):
        with pytest.raises(ValueError):
            GreedySearch(space=space).optimise(QoREvaluator(adder), budget=0)


class TestGeneticAlgorithm:
    def test_budget_respected(self, adder, space):
        result = GeneticAlgorithm(space=space, seed=0).optimise(QoREvaluator(adder), budget=15)
        assert result.num_evaluations == 15
        assert result.method == "GA"

    def test_population_capped_by_budget(self, adder, space):
        config = GAConfig(population_size=50)
        result = GeneticAlgorithm(space=space, seed=0, config=config).optimise(
            QoREvaluator(adder), budget=8)
        assert result.num_evaluations == 8
        assert result.metadata["population_size"] == 8

    def test_elitism_never_loses_best(self, adder, space):
        evaluator = QoREvaluator(adder)
        result = GeneticAlgorithm(space=space, seed=4).optimise(evaluator, budget=25)
        assert result.best_improvement == pytest.approx(max(result.history))

    def test_deterministic_given_seed(self, adder, space):
        a = GeneticAlgorithm(space=space, seed=3).optimise(QoREvaluator(adder), budget=12)
        b = GeneticAlgorithm(space=space, seed=3).optimise(QoREvaluator(adder), budget=12)
        assert a.history == b.history

    def test_invalid_budget(self, adder, space):
        with pytest.raises(ValueError):
            GeneticAlgorithm(space=space).optimise(QoREvaluator(adder), budget=0)

    def test_config_mutation_extremes(self, adder, space):
        config = GAConfig(mutation_probability=1.0, crossover_probability=0.0)
        result = GeneticAlgorithm(space=space, seed=0, config=config).optimise(
            QoREvaluator(adder), budget=10)
        assert result.num_evaluations == 10
