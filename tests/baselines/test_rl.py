"""Tests for the RL baselines: networks, environment, A2C/PPO/Graph-RL."""

import numpy as np
import pytest

from repro.baselines.rl import (
    A2COptimiser,
    GraphRLOptimiser,
    MLP,
    PolicyValueNetwork,
    PPOOptimiser,
    SynthesisEnvironment,
)
from repro.baselines.rl.networks import AdamState, softmax
from repro.bo.space import SequenceSpace
from repro.circuits import make_adder
from repro.qor import QoREvaluator


@pytest.fixture(scope="module")
def adder():
    return make_adder(4)


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=3)


class TestNetworks:
    def test_mlp_forward_shape(self, rng):
        mlp = MLP(input_dim=5, hidden_dim=8, output_dim=3, rng=rng)
        out, cache = mlp.forward(np.zeros((4, 5)))
        assert out.shape == (4, 3)
        assert cache["x"].shape == (4, 5)

    def test_mlp_gradient_check(self, rng):
        """Finite-difference check of the manual backprop."""
        mlp = MLP(input_dim=3, hidden_dim=4, output_dim=2, rng=rng)
        x = rng.normal(size=(2, 3))
        target = rng.normal(size=(2, 2))

        def loss():
            out, _ = mlp.forward(x)
            return 0.5 * float(np.sum((out - target) ** 2))

        out, cache = mlp.forward(x)
        grads = mlp.backward(out - target, cache)
        eps = 1e-5
        for name in ("W1", "b2", "W3"):
            param = mlp.params[name]
            idx = tuple(0 for _ in param.shape)
            original = param[idx]
            param[idx] = original + eps
            plus = loss()
            param[idx] = original - eps
            minus = loss()
            param[idx] = original
            numeric = (plus - minus) / (2 * eps)
            assert grads[name][idx] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_softmax_normalised(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_stability_with_large_logits(self):
        probs = softmax(np.array([1e4, 1e4 + 1]))
        assert np.isfinite(probs).all()

    def test_adam_state_updates_parameters(self, rng):
        params = {"w": np.ones(3)}
        opt = AdamState(params, learning_rate=0.1)
        opt.update(params, {"w": np.ones(3)})
        assert np.all(params["w"] < 1.0)

    def test_policy_value_network_probabilities(self, rng):
        net = PolicyValueNetwork(state_dim=4, num_actions=6, seed=0)
        probs = net.action_probabilities(np.zeros(4))
        assert probs.shape == (6,)
        assert probs.sum() == pytest.approx(1.0)

    def test_policy_gradient_shifts_towards_advantage(self):
        net = PolicyValueNetwork(state_dim=3, num_actions=4, seed=1, learning_rate=0.05)
        state = np.array([0.2, -0.3, 0.5])
        before = net.action_probabilities(state)[2]
        for _ in range(30):
            net.policy_gradient_step(state[None, :], np.array([2]), np.array([1.0]),
                                     entropy_coefficient=0.0)
        after = net.action_probabilities(state)[2]
        assert after > before

    def test_value_step_reduces_loss(self):
        net = PolicyValueNetwork(state_dim=3, num_actions=2, seed=2, learning_rate=0.05)
        states = np.array([[0.0, 1.0, -1.0], [1.0, 0.0, 0.5]])
        returns = np.array([1.0, -1.0])
        first = net.value_step(states, returns)
        for _ in range(50):
            last = net.value_step(states, returns)
        assert last < first


class TestEnvironment:
    def test_reset_and_dims(self, adder, space):
        env = SynthesisEnvironment(QoREvaluator(adder), space=space)
        state = env.reset()
        assert state.shape == (env.state_dim,)
        assert env.num_actions == 11
        assert env.episode_length == 3

    def test_episode_registers_one_evaluation(self, adder, space):
        evaluator = QoREvaluator(adder)
        env = SynthesisEnvironment(evaluator, space=space)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done = env.step(0)
            steps += 1
        assert steps == 3
        assert evaluator.num_evaluations == 1
        assert env.current_sequence() == [0, 0, 0]

    def test_rewards_telescope_to_qor_decrease(self, adder, space):
        evaluator = QoREvaluator(adder)
        env = SynthesisEnvironment(evaluator, space=space)
        env.reset()
        initial_qor = env._qor_of(evaluator.aig)
        rewards = []
        done = False
        actions = [6, 0, 2]
        idx = 0
        while not done:
            _, reward, done = env.step(actions[idx])
            rewards.append(reward)
            idx += 1
        final_record = evaluator.history[-1]
        assert sum(rewards) == pytest.approx(initial_qor - final_record.qor, abs=1e-9)

    def test_step_after_done_raises(self, adder, space):
        env = SynthesisEnvironment(QoREvaluator(adder), space=space)
        env.reset()
        for _ in range(3):
            env.step(0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_rejected(self, adder, space):
        env = SynthesisEnvironment(QoREvaluator(adder), space=space)
        env.reset()
        with pytest.raises(ValueError):
            env.step(42)

    def test_graph_features_extend_state(self, adder, space):
        plain = SynthesisEnvironment(QoREvaluator(adder), space=space)
        graph = SynthesisEnvironment(QoREvaluator(adder), space=space,
                                     use_graph_features=True)
        assert graph.state_dim == plain.state_dim + 16


class TestRLOptimisers:
    @pytest.mark.parametrize("cls,name", [
        (A2COptimiser, "DRiLLS (A2C)"),
        (PPOOptimiser, "DRiLLS (PPO)"),
        (GraphRLOptimiser, "Graph-RL"),
    ])
    def test_budget_and_contract(self, cls, name, adder, space):
        result = cls(space=space, seed=0).optimise(QoREvaluator(adder), budget=4)
        assert result.method == name
        assert result.num_evaluations == 4
        assert len(result.best_trajectory) == 4
        assert "episode_returns" in result.metadata

    def test_a2c_deterministic_given_seed(self, adder, space):
        a = A2COptimiser(space=space, seed=11).optimise(QoREvaluator(adder), budget=3)
        b = A2COptimiser(space=space, seed=11).optimise(QoREvaluator(adder), budget=3)
        assert a.history == b.history

    def test_graph_rl_size_guard(self, space):
        optimiser = GraphRLOptimiser(space=space, max_circuit_ands=100)
        assert optimiser.supports_circuit(50)
        assert not optimiser.supports_circuit(200)
        assert GraphRLOptimiser(space=space, max_circuit_ands=None).supports_circuit(10**6)
