"""Tests for BOiLS, SBO and the optimiser result contract."""

import numpy as np
import pytest

from repro.bo import BOiLS, SequenceSpace, StandardBO
from repro.bo.base import OptimisationResult
from repro.qor import QoREvaluator
from repro.circuits import make_adder


@pytest.fixture(scope="module")
def evaluator_factory():
    aig = make_adder(4)

    def factory():
        return QoREvaluator(aig)

    return factory


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=4)


def _check_result_contract(result: OptimisationResult, budget: int):
    assert result.num_evaluations == budget
    assert len(result.history) == budget
    assert len(result.best_trajectory) == budget
    assert len(result.evaluated_points) == budget
    assert result.best_improvement == pytest.approx(max(result.best_trajectory))
    # Best trajectory is monotone non-decreasing.
    assert all(b >= a for a, b in zip(result.best_trajectory, result.best_trajectory[1:]))
    assert len(result.best_sequence) <= 4
    assert result.best_area > 0 or result.best_delay >= 0


class TestBOiLS:
    def test_respects_budget_and_contract(self, evaluator_factory, space):
        optimiser = BOiLS(space=space, seed=0, num_initial=3,
                          local_search_queries=40, adam_steps=2)
        result = optimiser.optimise(evaluator_factory(), budget=8)
        _check_result_contract(result, 8)
        assert result.method == "BOiLS"

    def test_metadata_contains_kernel_params(self, evaluator_factory, space):
        optimiser = BOiLS(space=space, seed=1, num_initial=3,
                          local_search_queries=30, adam_steps=1)
        result = optimiser.optimise(evaluator_factory(), budget=6)
        assert "kernel_params" in result.metadata
        params = result.metadata["kernel_params"]
        assert 0 < params["theta_match"] <= 1.0
        assert 0 < params["theta_gap"] <= 1.0

    def test_deterministic_given_seed(self, evaluator_factory, space):
        kwargs = dict(space=space, num_initial=3, local_search_queries=30, adam_steps=1)
        first = BOiLS(seed=7, **kwargs).optimise(evaluator_factory(), budget=6)
        second = BOiLS(seed=7, **kwargs).optimise(evaluator_factory(), budget=6)
        assert first.best_sequence == second.best_sequence
        assert first.history == second.history

    def test_different_seeds_can_differ(self, evaluator_factory, space):
        kwargs = dict(space=space, num_initial=3, local_search_queries=30, adam_steps=1)
        first = BOiLS(seed=0, **kwargs).optimise(evaluator_factory(), budget=6)
        second = BOiLS(seed=99, **kwargs).optimise(evaluator_factory(), budget=6)
        # Histories almost surely differ (different random initial designs).
        assert first.history != second.history

    def test_improves_over_first_random_samples(self, evaluator_factory, space):
        optimiser = BOiLS(space=space, seed=3, num_initial=4,
                          local_search_queries=60, adam_steps=2)
        result = optimiser.optimise(evaluator_factory(), budget=14)
        assert result.best_trajectory[-1] >= result.best_trajectory[3]

    def test_alternative_acquisitions(self, evaluator_factory, space):
        for acq in ("pi", "ucb"):
            optimiser = BOiLS(space=space, seed=0, num_initial=3, acquisition=acq,
                              local_search_queries=30, adam_steps=1)
            result = optimiser.optimise(evaluator_factory(), budget=5)
            _check_result_contract(result, 5)

    def test_budget_smaller_than_initial_design(self, evaluator_factory, space):
        optimiser = BOiLS(space=space, seed=0, num_initial=10,
                          local_search_queries=20, adam_steps=1)
        result = optimiser.optimise(evaluator_factory(), budget=3)
        assert result.num_evaluations == 3


class TestStandardBO:
    def test_respects_budget_and_contract(self, evaluator_factory, space):
        optimiser = StandardBO(space=space, seed=0, num_initial=3, adam_steps=2)
        result = optimiser.optimise(evaluator_factory(), budget=8)
        _check_result_contract(result, 8)
        assert result.method == "SBO"

    def test_onehot_kernel_variant(self, evaluator_factory, space):
        optimiser = StandardBO(space=space, seed=0, num_initial=3,
                               kernel_type="onehot-se", adam_steps=1)
        result = optimiser.optimise(evaluator_factory(), budget=6)
        _check_result_contract(result, 6)

    def test_deterministic_given_seed(self, evaluator_factory, space):
        kwargs = dict(space=space, num_initial=3, adam_steps=1)
        first = StandardBO(seed=5, **kwargs).optimise(evaluator_factory(), budget=6)
        second = StandardBO(seed=5, **kwargs).optimise(evaluator_factory(), budget=6)
        assert first.history == second.history
