"""Tests for the sequence space and acquisition functions."""

import numpy as np
import pytest

from repro.bo.acquisition import (
    expected_improvement,
    get_acquisition,
    probability_of_improvement,
    ucb,
)
from repro.bo.space import SequenceSpace


class TestSequenceSpace:
    def test_defaults_match_paper(self):
        space = SequenceSpace()
        assert space.sequence_length == 20
        assert space.num_operations == 11
        assert space.cardinality == 11 ** 20

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            SequenceSpace(sequence_length=0)

    def test_conversions_roundtrip(self):
        space = SequenceSpace(sequence_length=4)
        indices = np.array([0, 6, 2, 10])
        names = space.to_names(indices)
        assert names == ["rewrite", "balance", "refactor", "dsdb"]
        assert np.array_equal(space.to_indices(names), indices)

    def test_to_indices_validates_range(self):
        space = SequenceSpace(sequence_length=2)
        with pytest.raises(ValueError):
            space.to_indices([99, 0])

    def test_to_string(self):
        space = SequenceSpace(sequence_length=3)
        assert space.to_string([0, 2, 6]) == "RwRfBl"

    def test_sample_shape_and_range(self, rng):
        space = SequenceSpace(sequence_length=7)
        samples = space.sample(20, rng)
        assert samples.shape == (20, 7)
        assert samples.min() >= 0 and samples.max() < space.num_operations

    def test_latin_hypercube_spreads_categories(self, rng):
        space = SequenceSpace(sequence_length=5)
        samples = space.latin_hypercube_sample(22, rng)
        # Every operation appears exactly twice per position (22 = 2 * 11).
        for position in range(5):
            counts = np.bincount(samples[:, position], minlength=11)
            assert counts.max() - counts.min() <= 1

    def test_random_neighbour_distance(self, rng):
        space = SequenceSpace(sequence_length=8)
        base = space.sample(1, rng)[0]
        for changes in (1, 2, 3):
            neighbour = space.random_neighbour(base, rng, num_changes=changes)
            assert space.hamming_distance(base, neighbour) == changes

    def test_point_in_hamming_ball(self, rng):
        space = SequenceSpace(sequence_length=10)
        centre = space.sample(1, rng)[0]
        for radius in (0, 1, 3, 10):
            point = space.random_point_in_hamming_ball(centre, radius, rng)
            assert space.hamming_distance(centre, point) <= radius

    def test_hamming_distance_validates_length(self):
        space = SequenceSpace(sequence_length=3)
        with pytest.raises(ValueError):
            space.hamming_distance([1, 2, 3], [1, 2])

    def test_all_neighbours_count(self):
        space = SequenceSpace(sequence_length=3)
        neighbours = space.all_neighbours(np.array([0, 0, 0]))
        assert neighbours.shape == (3 * 10, 3)
        distances = {space.hamming_distance([0, 0, 0], n) for n in neighbours}
        assert distances == {1}

    def test_custom_alphabet(self):
        space = SequenceSpace(sequence_length=2, alphabet=["rewrite", "balance"])
        assert space.num_operations == 2
        assert space.to_names([1, 0]) == ["balance", "rewrite"]


class TestAcquisitions:
    def test_ei_zero_without_uncertainty_or_gain(self):
        value = expected_improvement(np.array([0.0]), np.array([1e-15]), best_value=1.0)
        assert value[0] == pytest.approx(0.0, abs=1e-9)

    def test_ei_increases_with_mean(self):
        std = np.array([0.5, 0.5])
        ei = expected_improvement(np.array([0.0, 1.0]), std, best_value=0.0)
        assert ei[1] > ei[0]

    def test_ei_increases_with_uncertainty(self):
        mean = np.array([0.0, 0.0])
        ei = expected_improvement(mean, np.array([0.1, 2.0]), best_value=0.5)
        assert ei[1] > ei[0]

    def test_pi_bounded_in_unit_interval(self, rng):
        pi = probability_of_improvement(rng.normal(size=50), np.abs(rng.normal(size=50)) + 0.1,
                                        best_value=0.0)
        assert np.all((pi >= 0) & (pi <= 1))

    def test_ucb_is_mean_plus_bonus(self):
        value = ucb(np.array([1.0]), np.array([2.0]), beta=4.0)
        assert value[0] == pytest.approx(1.0 + 2.0 * 2.0)

    def test_registry(self):
        assert get_acquisition("EI") is expected_improvement
        assert get_acquisition("ucb") is ucb
        with pytest.raises(KeyError):
            get_acquisition("entropy-search")
