"""Checkpoint-protocol tests: state_dict round trips for all 8 optimisers.

The contract under test (see ``SequenceOptimiser.state_dict``): snapshot
an optimiser at a round boundary, JSON-round-trip the snapshot, restore
it onto a *fresh* optimiser instance (``prepare`` + ``load_state_dict``)
together with the evaluator history, continue the drive loop — and the
full trajectory must be bit-identical to the uninterrupted run.
"""

import json

import pytest

from repro.bo.base import drive
from repro.bo.space import SequenceSpace
from repro.circuits import get_circuit
from repro.experiments.runner import make_optimiser
from repro.qor import QoREvaluator

#: (method key, budget, constructor overrides, round to checkpoint after).
CASES = [
    ("rs", 6, {}, 1),
    ("greedy", 14, {}, 1),
    ("ga", 25, {}, 1),
    ("boils", 6, {"num_initial": 2, "local_search_queries": 20,
                  "adam_steps": 1, "fit_every": 2}, 3),
    ("boils", 6, {"num_initial": 2, "local_search_queries": 20,
                  "adam_steps": 1, "fit_every": 1, "refit_gate": True,
                  "refit_gate_tol": 1.0, "refit_gate_patience": 1}, 3),
    ("sbo", 6, {"num_initial": 2, "adam_steps": 1, "fit_every": 2}, 3),
    ("a2c", 4, {}, 2),
    ("ppo", 4, {}, 2),
    ("graph-rl", 4, {}, 2),
]

CASE_IDS = [f"{key}-r{stop}" + ("-gated" if overrides.get("refit_gate") else "")
            for key, _, overrides, stop in CASES]


@pytest.fixture(scope="module")
def adder():
    return get_circuit("adder", width=4)


@pytest.fixture()
def space():
    return SequenceSpace(sequence_length=3)


def _json_round_trip(payload):
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("key, budget, overrides, stop_round", CASES,
                         ids=CASE_IDS)
def test_checkpoint_round_trip_is_bit_identical(adder, space, key, budget,
                                                overrides, stop_round):
    # Uninterrupted reference run.
    full_evaluator = QoREvaluator(adder)
    full = make_optimiser(key, space=space, seed=1, **overrides)
    full_result = full.optimise(full_evaluator, budget=budget)

    # Interrupted run: stop at the checkpoint round, snapshot everything.
    part_evaluator = QoREvaluator(adder)
    part = make_optimiser(key, space=space, seed=1, **overrides)
    part.prepare(part_evaluator, budget)
    rounds = drive(part, part_evaluator, budget,
                   stop_when=lambda progress: progress.round_index >= stop_round)
    assert rounds == stop_round
    snapshot = _json_round_trip(part.state_dict())
    history_mark = list(part_evaluator.history)
    counters = (part_evaluator.num_computed, part_evaluator.num_persistent_hits)

    # Fresh instance, restored from the JSON round trip, continues.
    resumed_evaluator = QoREvaluator(adder)
    resumed = make_optimiser(key, space=space, seed=1, **overrides)
    resumed.prepare(resumed_evaluator, budget)
    resumed_evaluator.restore_history(history_mark, num_computed=counters[0],
                                      num_persistent_hits=counters[1])
    resumed.load_state_dict(snapshot)
    drive(resumed, resumed_evaluator, budget, start_round=rounds)
    resumed_result = resumed._build_result(resumed_evaluator, adder.name,
                                           metadata=resumed.run_metadata())

    assert resumed_result.history == full_result.history
    assert resumed_result.best_trajectory == full_result.best_trajectory
    assert resumed_result.best_sequence == full_result.best_sequence
    assert resumed_result.best_qor == full_result.best_qor
    assert resumed_result.num_evaluations == full_result.num_evaluations
    assert resumed_result.evaluated_points == full_result.evaluated_points


def test_all_registered_optimisers_support_checkpointing(space):
    from repro.registry import OPTIMISERS

    for key in OPTIMISERS.keys():
        optimiser = make_optimiser(key, space=space, seed=0)
        assert optimiser.supports_checkpoint, (
            f"{key} does not implement the checkpoint protocol")


def test_state_dict_requires_implementation(space):
    from repro.bo.base import SequenceOptimiser

    class Bare(SequenceOptimiser):
        pass

    bare = Bare(space=space)
    assert not bare.supports_checkpoint
    with pytest.raises(NotImplementedError):
        bare.state_dict()


def test_rng_state_round_trips_through_json(space):
    optimiser = make_optimiser("rs", space=space, seed=7)
    optimiser.rng.integers(0, 100, size=5)  # advance the stream
    snapshot = _json_round_trip(optimiser.state_dict())
    expected = optimiser.rng.integers(0, 10**9, size=8).tolist()

    other = make_optimiser("rs", space=space, seed=7)
    other.load_state_dict(snapshot)
    assert other.rng.integers(0, 10**9, size=8).tolist() == expected
