"""Tests for the trust-region schedule and local-search maximiser."""

import numpy as np
import pytest

from repro.bo.space import SequenceSpace
from repro.bo.trust_region import TrustRegion, TrustRegionConfig, TrustRegionLocalSearch


@pytest.fixture()
def space():
    return SequenceSpace(sequence_length=8)


class TestTrustRegionSchedule:
    def test_initial_radius_defaults_to_k(self, space):
        assert TrustRegion(space).radius == 8

    def test_custom_initial_radius(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=3))
        assert tr.radius == 3

    def test_grows_after_three_successes(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=4))
        tr.update(True)
        tr.update(True)
        assert tr.radius == 4
        tr.update(True)
        assert tr.radius == 5

    def test_success_streak_resets_on_failure(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=4))
        tr.update(True)
        tr.update(True)
        tr.update(False)
        tr.update(True)
        assert tr.radius == 4

    def test_shrinks_after_twenty_failures(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=4))
        for _ in range(19):
            tr.update(False)
        assert tr.radius == 4
        tr.update(False)
        assert tr.radius == 3

    def test_radius_capped_at_sequence_length(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=8))
        for _ in range(3):
            tr.update(True)
        assert tr.radius == 8

    def test_restart_when_radius_reaches_zero(self, space):
        tr = TrustRegion(space, TrustRegionConfig(
            initial_radius=1, failure_streak_to_shrink=2))
        tr.update(False)
        tr.update(False)
        assert tr.needs_restart
        tr.restart()
        # The radius goes back to its configured initial value.
        assert tr.radius == 1
        assert tr.num_restarts == 1

    def test_restart_without_explicit_initial_radius(self, space):
        tr = TrustRegion(space, TrustRegionConfig(failure_streak_to_shrink=1))
        for _ in range(space.sequence_length):
            tr.update(False)
        assert tr.needs_restart
        tr.restart()
        assert tr.radius == space.sequence_length

    def test_contains_uses_hamming_distance(self, space):
        tr = TrustRegion(space, TrustRegionConfig(initial_radius=2))
        centre = np.zeros(8, dtype=int)
        near = centre.copy()
        near[0] = 1
        far = centre.copy()
        far[:4] = 1
        assert tr.contains(centre, near)
        assert not tr.contains(centre, far)


class TestLocalSearch:
    def test_result_stays_in_trust_region(self, space, rng):
        search = TrustRegionLocalSearch(space, num_queries=100)
        centre = space.sample(1, rng)[0]

        def acquisition(candidates):
            return np.zeros(len(candidates))

        for radius in (1, 2, 4):
            candidate, _ = search.maximise(acquisition, centre, radius, rng)
            assert space.hamming_distance(centre, candidate) <= radius

    def test_finds_known_optimum_direction(self, space, rng):
        """Acquisition that rewards operation 0 at every position."""
        search = TrustRegionLocalSearch(space, num_queries=600, num_restarts=4)
        centre = np.full(8, 5, dtype=int)

        def acquisition(candidates):
            return np.sum(np.asarray(candidates) == 0, axis=1).astype(float)

        candidate, score = search.maximise(acquisition, centre, radius=8, rng=rng)
        assert score >= 2  # hill climbing found several zeroed positions

    def test_excluded_points_not_returned(self, space, rng):
        search = TrustRegionLocalSearch(space, num_queries=50)
        centre = space.sample(1, rng)[0]
        exclude = {tuple(centre.tolist())}

        def acquisition(candidates):
            # Strongly favour the centre itself, which is excluded.
            return -np.sum(np.asarray(candidates) != centre[None, :], axis=1).astype(float)

        candidate, _ = search.maximise(acquisition, centre, radius=2, rng=rng,
                                       exclude=exclude)
        assert tuple(candidate.tolist()) not in exclude

    def test_radius_zero_returns_centre_or_fallback(self, space, rng):
        search = TrustRegionLocalSearch(space, num_queries=20)
        centre = space.sample(1, rng)[0]

        def acquisition(candidates):
            return np.ones(len(candidates))

        candidate, _ = search.maximise(acquisition, centre, radius=0, rng=rng)
        assert space.hamming_distance(centre, candidate) == 0
