"""Tests for the parallel (method × circuit × seed) grid runner."""

import pytest

from repro.engine import PersistentQoRCache
from repro.engine.grid import grid_cell_payloads, run_grid
from repro.experiments import ExperimentConfig, build_qor_table, run_experiment


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        budget=5, num_seeds=2, sequence_length=4, circuit_width=4,
        circuits=("adder",), methods=("rs", "ga"),
    )


class TestPayloads:
    def test_cell_ordering_and_indices(self, config):
        payloads = grid_cell_payloads(config)
        assert len(payloads) == 4  # 1 circuit × 2 methods × 2 seeds
        assert [p["index"] for p in payloads] == [0, 1, 2, 3]
        assert [p["method_key"] for p in payloads] == ["rs", "rs", "ga", "ga"]
        assert [p["seed"] for p in payloads] == [0, 1, 0, 1]

    def test_width_resolved_in_spec(self, config):
        payloads = grid_cell_payloads(config)
        assert all(p["spec"]["width"] == 4 for p in payloads)


class TestJobsEquivalence:
    def test_serial_and_parallel_grids_identical(self, config):
        serial = run_grid(config, jobs=1)
        parallel = run_grid(config, jobs=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert (a.method, a.circuit, a.seed) == (b.method, b.circuit, b.seed)
            assert a.history == b.history
            assert a.best_sequence == b.best_sequence
        table_a = build_qor_table(serial)
        table_b = build_qor_table(parallel)
        assert table_a.to_csv() == table_b.to_csv()

    def test_run_experiment_jobs_flag(self, config):
        results = run_experiment(config, jobs=2)
        assert len(results) == 4
        assert {r.method for r in results} == {"RS", "GA"}

    def test_rerun_is_deterministic(self, config):
        first = run_grid(config, jobs=1)
        second = run_grid(config, jobs=1)
        for a, b in zip(first, second):
            assert a.history == b.history


class TestPersistentCacheInGrid:
    def test_warm_cache_reproduces_results(self, config, tmp_path):
        cache_dir = str(tmp_path / "qor-cache")
        cold = run_grid(config, jobs=1, cache_dir=cache_dir)
        with PersistentQoRCache(cache_dir) as cache:
            assert len(cache) > 0
        warm = run_grid(config, jobs=1, cache_dir=cache_dir)
        for a, b in zip(cold, warm):
            assert a.history == b.history
            assert a.best_sequence == b.best_sequence
        # And a cache-less run agrees too: caching never changes results.
        plain = run_grid(config, jobs=1)
        for a, b in zip(cold, plain):
            assert a.history == b.history

    def test_parallel_workers_share_cache(self, config, tmp_path):
        cache_dir = str(tmp_path / "qor-cache")
        parallel = run_grid(config, jobs=2, cache_dir=cache_dir)
        serial = run_grid(config, jobs=1)
        for a, b in zip(parallel, serial):
            assert a.history == b.history


class TestProgress:
    def test_progress_messages(self, config):
        messages = []
        run_grid(config, jobs=1, progress=messages.append)
        assert len(messages) == 4
        assert messages[0] == "RS / adder / seed 0"
