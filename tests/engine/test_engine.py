"""Tests for the parallel evaluation engine and spec round-trips."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.bo.space import SequenceSpace
from repro.engine import EvaluationEngine, EvaluatorSpec, resolve_jobs


@pytest.fixture(scope="module")
def spec():
    return EvaluatorSpec.for_circuit("adder", width=4)


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=4)


class TestSpec:
    def test_width_is_resolved(self):
        spec = EvaluatorSpec.for_circuit("adder")
        assert spec.width > 0

    def test_alias_is_canonicalised(self):
        spec = EvaluatorSpec.for_circuit("square root", width=6)
        assert spec.circuit == "sqrt"

    def test_payload_roundtrip(self, spec):
        assert EvaluatorSpec.from_payload(spec.to_payload()) == spec

    def test_build_evaluator(self, spec):
        evaluator = spec.build_evaluator()
        assert evaluator.reference_area >= 1
        assert evaluator.lut_size == spec.lut_size


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestComputeBatch:
    def test_serial_matches_direct_compute(self, spec, space):
        evaluator = spec.build_evaluator()
        rows = space.sample(5, np.random.default_rng(0))
        batch = [space.to_names(row) for row in rows]
        with EvaluationEngine(spec, jobs=1, evaluator=evaluator) as engine:
            records = engine.compute_batch(batch)
        assert [r.sequence for r in records] == [tuple(names) for names in batch]
        assert records == [evaluator.compute(names) for names in batch]
        # Pure compute: the evaluator recorded nothing.
        assert evaluator.num_evaluations == 0
        assert evaluator.history == []

    def test_parallel_matches_serial(self, spec, space):
        rows = space.sample(6, np.random.default_rng(1))
        batch = [space.to_names(row) for row in rows]
        with EvaluationEngine(spec, jobs=1) as serial:
            expected = serial.compute_batch(batch)
        with EvaluationEngine(spec, jobs=2) as parallel:
            assert parallel.compute_batch(batch) == expected

    def test_empty_batch(self, spec):
        with EvaluationEngine(spec, jobs=1) as engine:
            assert engine.compute_batch([]) == []

    def test_parallel_requires_spec(self, spec):
        evaluator = spec.build_evaluator()
        with pytest.raises(ValueError):
            EvaluationEngine(jobs=2, evaluator=evaluator)
        with pytest.raises(ValueError):
            EvaluationEngine()


class TestEngineBackedRuns:
    def test_jobs1_vs_jobs2_identical_random_search(self, spec, space):
        """The headline determinism guarantee of the subsystem."""
        results = {}
        for jobs in (1, 2):
            evaluator = spec.build_evaluator()
            with EvaluationEngine(spec, jobs=jobs, evaluator=evaluator) as engine:
                evaluator.attach_engine(engine)
                results[jobs] = RandomSearch(space=space, seed=5).optimise(
                    evaluator, budget=8)
        assert results[1].history == results[2].history
        assert results[1].best_sequence == results[2].best_sequence
        assert results[1].num_evaluations == results[2].num_evaluations == 8

    def test_attached_engine_records_in_submission_order(self, spec, space):
        evaluator = spec.build_evaluator()
        rows = space.sample(6, np.random.default_rng(2))
        batch = [space.to_names(row) for row in rows]
        with EvaluationEngine(spec, jobs=2) as engine:
            evaluator.attach_engine(engine)
            records = evaluator.evaluate_many(batch)
        assert [r.sequence for r in evaluator.history] == [r.sequence for r in records]
        assert evaluator.num_evaluations == len(batch)
