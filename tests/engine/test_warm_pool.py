"""Tests for the warm-pool execution stack (PR: warm-pool parallel evaluation).

Covers the three tentpole layers end to end:

* :mod:`repro.engine.shm` — flat-array encode/decode, publish/attach
  round-trips, vanished-segment fallback, and parent-owned unlink;
* :mod:`repro.engine.pool` — lazy build, reuse across batches, epoch
  bumping recycle, idempotent close;
* :mod:`repro.engine.planner` — serial bootstrap, single-core and
  multi-core routing, cold spin-up accounting;

plus the engine-level invariants that tie them together: bit-identity of
the warm-pool path versus serial, one pool build across many batches,
crash recovery that re-warms (not discards) shared-memory state, no shm
leak after ``close()``, and the bounded worker-side evaluator LRU whose
eviction can never change results.
"""

import dataclasses
import json
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.bo.space import SequenceSpace
from repro.engine import EvaluationEngine, EvaluatorSpec
from repro.engine import shm, worker
from repro.engine.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.engine.planner import ExecutionPlanner, effective_parallelism
from repro.engine.pool import WarmPool
from repro.qor.evaluator import aig_fingerprint


def _no_sleep(_seconds: float) -> None:
    pass


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)

#: A segment name that never exists: exercises the vanished-segment path.
_DEAD_HANDLE = shm.SharedAIGHandle(name="repro_test_no_such_segment", size=64)


@pytest.fixture(scope="module")
def spec():
    return EvaluatorSpec.for_circuit("adder", width=4)


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=3)


@pytest.fixture(scope="module")
def batches(space):
    rng = np.random.default_rng(0)
    return [[tuple(space.to_names(row)) for row in space.sample(4, rng)]
            for _ in range(3)]


# ---------------------------------------------------------------------------
# Shared-memory AIG hand-off
# ---------------------------------------------------------------------------
class TestSharedAIG:
    def test_encode_decode_is_bit_identical(self, spec):
        aig = spec.build_evaluator(cache=False).aig
        clone = shm.decode_aig(shm.encode_aig(aig))
        assert aig_fingerprint(clone) == aig_fingerprint(aig)
        assert clone.node_arrays() == aig.node_arrays()
        assert clone.pis == aig.pis
        assert clone.pos == aig.pos
        assert clone.po_names == aig.po_names
        assert [clone.node(v).name for v in clone.pis] == \
            [aig.node(v).name for v in aig.pis]
        assert clone.name == aig.name

    def test_decode_rejects_corrupt_payloads(self, spec):
        aig = spec.build_evaluator(cache=False).aig
        payload = shm.encode_aig(aig)
        with pytest.raises(ValueError, match="magic"):
            shm.decode_aig(b"XXXX" + payload[4:])
        with pytest.raises(ValueError, match="trailing"):
            shm.decode_aig(payload + b"\x00")

    def test_from_flat_arrays_validates_shape(self):
        from repro.aig.graph import AIG

        with pytest.raises(ValueError, match="equal length"):
            AIG.from_flat_arrays(name="x", is_and=[0, 0], fanin0=[0],
                                 fanin1=[0, 0], pi_names=["a"], pos=[],
                                 po_names=[])
        with pytest.raises(ValueError, match="constant"):
            AIG.from_flat_arrays(name="x", is_and=[1], fanin0=[0],
                                 fanin1=[0], pi_names=[], pos=[],
                                 po_names=[])

    def test_publish_attach_unlink_round_trip(self, spec):
        aig = spec.build_evaluator(cache=False).aig
        shm.reset_counters()
        segment, handle = shm.publish_aig(aig)
        try:
            attached = shm.attach_aig(handle)
            assert attached is not None
            assert aig_fingerprint(attached) == aig_fingerprint(aig)
            assert shm.attach_count() == 1
            assert shm.fallback_count() == 0
        finally:
            shm.unlink_segment(segment)
        # The parent's unlink is final: a later attach degrades cleanly.
        assert shm.attach_aig(handle) is None
        assert shm.fallback_count() == 1

    def test_vanished_segment_attach_returns_none(self):
        shm.reset_counters()
        assert shm.attach_aig(_DEAD_HANDLE) is None
        assert shm.fallback_count() == 1
        assert shm.attach_count() == 0

    def test_unlink_segment_tolerates_double_unlink(self, spec):
        aig = spec.build_evaluator(cache=False).aig
        segment, handle = shm.publish_aig(aig)
        shm.unlink_segment(segment)
        other = None
        with pytest.raises(FileNotFoundError):
            other = shared_memory.SharedMemory(name=handle.name)
        assert other is None


class TestWarmSpecHandoff:
    def test_shared_spec_builds_identical_evaluator(self, spec, space):
        cold = spec.build_evaluator(cache=False)
        segment, handle = shm.publish_aig(cold.aig)
        try:
            warm_spec = dataclasses.replace(
                spec,
                shared_aig=handle,
                reference_stats=(cold.reference_area, cold.reference_delay),
                initial_stats=(cold.initial_result.area,
                               cold.initial_result.delay),
            )
            warm = warm_spec.build_evaluator(cache=False)
            assert warm.reference_area == cold.reference_area
            assert warm.reference_delay == cold.reference_delay
            assert warm.initial_result == cold.initial_result
            names = tuple(space.to_names(
                space.sample(1, np.random.default_rng(7))[0]))
            assert warm.compute(names) == cold.compute(names)
        finally:
            shm.unlink_segment(segment)

    def test_vanished_segment_drops_warm_stats(self, spec):
        # Deliberately wrong piggybacked stats: the fallback must discard
        # them along with the handle, or a stale hand-off could poison
        # the rebuilt evaluator.
        degraded_spec = dataclasses.replace(
            spec, shared_aig=_DEAD_HANDLE,
            reference_stats=(99_999, 99_999), initial_stats=(99_999, 99_999))
        cold = spec.build_evaluator(cache=False)
        degraded = degraded_spec.build_evaluator(cache=False)
        assert degraded.reference_area == cold.reference_area
        assert degraded.reference_delay == cold.reference_delay
        assert degraded.initial_result == cold.initial_result

    def test_transport_fields_do_not_change_identity(self, spec):
        warm_spec = dataclasses.replace(
            spec, shared_aig=_DEAD_HANDLE, reference_stats=(1, 1),
            initial_stats=(2, 2))
        assert warm_spec.identity_key() == spec.identity_key()

    def test_payload_round_trip_with_handle_and_stats(self, spec):
        warm_spec = dataclasses.replace(
            spec, shared_aig=_DEAD_HANDLE, reference_stats=(3, 4),
            initial_stats=(5, 6))
        assert EvaluatorSpec.from_payload(warm_spec.to_payload()) == warm_spec

    def test_warm_and_cold_cache_keys_identical(self, spec):
        """Warm attach, cold build and shm-fallback share one cache key.

        Registry circuits have no ``circuit_hash``, so the persistent
        cache keys on the structural fingerprint of the rebuilt AIG; the
        shm encode/decode must preserve everything the fingerprint sees
        (including the name) or warm workers would silently write to a
        different namespace than cold ones.
        """
        cold = spec.build_evaluator(cache=False)
        segment, handle = shm.publish_aig(cold.aig)
        try:
            warm_spec = dataclasses.replace(
                spec,
                shared_aig=handle,
                reference_stats=(cold.reference_area, cold.reference_delay),
                initial_stats=(cold.initial_result.area,
                               cold.initial_result.delay),
            )
            warm = warm_spec.build_evaluator(cache=False)
            assert warm.cache_key == cold.cache_key
        finally:
            shm.unlink_segment(segment)
        # Segment gone: the fallback branch rebuilds from the registry
        # and must land on the very same key.
        fallen = warm_spec.build_evaluator(cache=False)
        assert fallen.cache_key == cold.cache_key
        assert fallen.cache_key == (
            f"{aig_fingerprint(cold.aig)}:lut{cold.lut_size}")


# ---------------------------------------------------------------------------
# Adaptive execution planner
# ---------------------------------------------------------------------------
class TestPlanner:
    def test_effective_parallelism_bounds(self):
        assert 1 <= effective_parallelism(4) <= 4
        assert effective_parallelism(1) == 1

    def test_jobs_one_and_tiny_batches_stay_serial(self):
        planner = ExecutionPlanner(jobs=1)
        assert planner.plan(8, pool_warm=True).mode == "serial"
        planner = ExecutionPlanner(jobs=4)
        assert planner.plan(1, pool_warm=True).mode == "serial"

    def test_bootstrap_routes_serial_until_measured(self):
        planner = ExecutionPlanner(jobs=4)
        decision = planner.plan(8, pool_warm=False)
        assert decision.mode == "serial"
        assert decision.reason == "bootstrap serial measurement"
        assert decision.predicted_serial is None

    def test_multi_core_prefers_warm_pool_for_large_batches(self):
        planner = ExecutionPlanner(jobs=4)
        planner.parallelism = 4  # simulate a 4-core host deterministically
        planner.observe_serial(10, 10.0)        # 1 s per evaluation
        planner.observe_pool(8, 2.0, cold=False)  # ~1 s per 4-wide wave
        decision = planner.plan(8, pool_warm=True)
        assert decision.mode == "pool"
        assert decision.predicted_pool < decision.predicted_serial

    def test_single_core_never_routes_to_pool(self):
        planner = ExecutionPlanner(jobs=4)
        planner.parallelism = 1  # simulate the 1-CPU container
        planner.observe_serial(10, 10.0)
        decision = planner.plan(8, pool_warm=True)
        assert decision.mode == "serial"
        assert decision.predicted_pool >= decision.predicted_serial

    def test_cold_pool_pays_spinup(self):
        planner = ExecutionPlanner(jobs=4)
        planner.parallelism = 4
        planner.observe_serial(10, 10.0)
        cold = planner.plan(8, pool_warm=False)
        warm = planner.plan(8, pool_warm=True)
        assert cold.predicted_pool > warm.predicted_pool

    def test_cold_observation_refines_spinup(self):
        planner = ExecutionPlanner(jobs=4)
        planner.parallelism = 4
        planner.observe_serial(4, 4.0)
        before = planner.state()["spinup_ewma"]
        # 8 evals in 2 waves ≈ 2 s of work; 3 s of wall clock leaves
        # ~1 s of unexplained spin-up to fold into the estimate.
        planner.observe_pool(8, 3.0, cold=True)
        after = planner.state()["spinup_ewma"]
        assert after != before

    def test_state_and_decisions_are_json_safe(self):
        planner = ExecutionPlanner(jobs=2)
        planner.observe_serial(4, 1.0)
        decision = planner.plan(4, pool_warm=False)
        json.dumps(planner.state(), sort_keys=True, allow_nan=False)
        json.dumps(decision.to_dict(), sort_keys=True, allow_nan=False)


# ---------------------------------------------------------------------------
# WarmPool lifecycle (no evaluator involved)
# ---------------------------------------------------------------------------
class TestWarmPoolLifecycle:
    def test_lazy_build_and_reuse(self):
        with WarmPool(max_workers=1) as pool:
            assert not pool.warm and pool.builds == 0
            executor = pool.executor()
            assert pool.warm and pool.builds == 1
            assert pool.executor() is executor
            assert pool.builds == 1
            assert executor.submit(int, "7").result() == 7

    def test_recycle_bumps_epoch_and_rebuilds(self):
        seen_epochs = []
        pool = WarmPool(max_workers=1,
                        initargs_for=lambda epoch: seen_epochs.append(epoch) or ())
        try:
            pool.executor()
            assert (pool.epoch, pool.builds) == (0, 1)
            pool.recycle()
            assert not pool.warm
            assert (pool.epoch, pool.builds) == (1, 1)
            pool.executor()
            assert (pool.epoch, pool.builds) == (1, 2)
            # initargs_for runs in the parent and sees each generation.
            assert seen_epochs == [0, 1]
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = WarmPool(max_workers=1)
        pool.executor()
        pool.close()
        pool.close()
        assert not pool.warm


# ---------------------------------------------------------------------------
# Engine-level warm-pool invariants
# ---------------------------------------------------------------------------
class TestEngineWarmPool:
    def test_forced_pool_is_bit_identical_and_builds_once(self, spec, batches):
        with EvaluationEngine(spec, jobs=1) as serial:
            expected = [serial.compute_batch(batch) for batch in batches]
        with EvaluationEngine(spec, jobs=2, adaptive=False) as engine:
            got = [engine.compute_batch(batch) for batch in batches]
            meta = engine.metadata()
        assert got == expected
        # One warm pool served every batch: no per-batch construction.
        assert meta["pool"] == {"warm": True, "epoch": 0, "builds": 1,
                                "rebuilds": 0}
        assert meta["shared_aig"] is not None
        assert all(d["mode"] == "pool" for d in meta["decisions"])
        json.dumps(meta, sort_keys=True, allow_nan=False)

    def test_adaptive_engine_is_bit_identical_and_logs_decisions(
            self, spec, batches):
        with EvaluationEngine(spec, jobs=1) as serial:
            expected = [serial.compute_batch(batch) for batch in batches]
        with EvaluationEngine(spec, jobs=2) as engine:
            got = [engine.compute_batch(batch) for batch in batches]
            meta = engine.metadata()
        assert got == expected
        decisions = meta["decisions"]
        assert len(decisions) == len(batches)
        assert decisions[0]["reason"] == "bootstrap serial measurement"
        assert meta["planner"]["serial_eval_ewma"] is not None

    def test_workers_hold_warm_state_from_shared_memory(self, spec, batches):
        with EvaluationEngine(spec, jobs=2, adaptive=False) as engine:
            engine.compute_batch(batches[0])
            pool = engine._ensure_pool()
            diagnostics = [pool.submit(worker.worker_diagnostics).result()
                           for _ in range(4)]
        for diag in diagnostics:
            assert diag["in_pool"]
            assert diag["epoch"] == 0
            assert diag["batch_evaluator_ready"]
            # Warm hand-off, not cold rebuild: exactly one attach at
            # initialisation, and never a fallback.
            assert diag["shm_attaches"] == 1
            assert diag["shm_fallbacks"] == 0

    def test_close_unlinks_shared_memory(self, spec, batches):
        engine = EvaluationEngine(spec, jobs=2, adaptive=False)
        engine.compute_batch(batches[0])
        handle = shm.SharedAIGHandle.from_payload(
            engine.metadata()["shared_aig"])
        assert shm.attach_aig(handle) is not None
        engine.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)
        assert shm.attach_aig(handle) is None
        engine.close()  # idempotent

    def test_crash_recovery_rewarms_pool_without_leaking_shm(
            self, spec, batches):
        # A crash pinned to epoch 0: the supervised loop must recycle the
        # warm pool (epoch bump + rebuild) and the fresh workers must
        # re-attach the same shared-memory segment.
        plan = FaultPlan(events=(FaultEvent(kind="crash", attempt=0, at=0),),
                         seed=1)
        faulty = dataclasses.replace(spec, fault_plan=plan.to_json())
        with EvaluationEngine(spec, jobs=1) as serial:
            expected = serial.compute_batch(batches[0])
        engine = EvaluationEngine(faulty, jobs=2, retry=FAST_RETRY,
                                  sleep=_no_sleep)
        try:
            records = engine.compute_batch(batches[0])
            assert records == expected
            assert engine._rebuilds >= 1
            meta = engine.metadata()
            assert meta["pool"]["epoch"] >= 1
            assert meta["pool"]["builds"] >= 2
            # The segment survived the recycle: the rebuilt epoch's
            # workers warmed from it, and it is still attachable now.
            handle = shm.SharedAIGHandle.from_payload(meta["shared_aig"])
            assert shm.attach_aig(handle) is not None
        finally:
            engine.close()
        # ... but not after close: recovery never leaks segments.
        assert shm.attach_aig(handle) is None


# ---------------------------------------------------------------------------
# Bounded worker-side evaluator cache
# ---------------------------------------------------------------------------
class TestEvaluatorLRU:
    def test_eviction_keeps_results_bit_identical(self, space):
        specs = [EvaluatorSpec.for_circuit("adder", width=width)
                 for width in (3, 4, 5)]
        names = tuple(space.to_names(
            space.sample(1, np.random.default_rng(3))[0]))
        expected = [s.build_evaluator(cache=False).compute(names)
                    for s in specs]
        worker.init_grid_worker(None, cache_limit=1)
        try:
            # Two round-robin passes at limit 1: every lookup after the
            # first evicts the previous circuit's evaluator.
            first = [worker._grid_evaluator(s).compute(names) for s in specs]
            second = [worker._grid_evaluator(s).compute(names) for s in specs]
            assert first == expected
            assert second == expected
            assert len(worker._GRID_EVALUATORS) == 1
            assert worker._GRID_EVALUATORS.evictions >= 4
        finally:
            worker._GRID_EVALUATORS.clear()
            worker._GRID_EVALUATORS.limit = worker.DEFAULT_EVALUATOR_CACHE_LIMIT
            worker._GRID_EVALUATORS.evictions = 0

    def test_unbounded_when_under_limit(self, space):
        lru = worker._EvaluatorLRU(limit=2)
        lru.put(("a",), "evaluator-a")
        lru.put(("b",), "evaluator-b")
        assert lru.get(("a",)) == "evaluator-a"
        assert len(lru) == 2 and lru.evictions == 0
        # "a" was just touched, so "b" is the LRU victim.
        lru.put(("c",), "evaluator-c")
        assert lru.evictions == 1
        assert lru.get(("b",)) is None
        assert lru.get(("a",)) == "evaluator-a"

    def test_default_limit_is_bounded(self):
        assert worker.DEFAULT_EVALUATOR_CACHE_LIMIT == 8
        assert worker._GRID_EVALUATORS.limit == 8
