"""Tests for the fault-tolerance primitives and the supervised engine.

Covers the :mod:`repro.engine.faults` vocabulary (retry policy,
deadlines, fault plans, injection hooks), the cache retry/degrade path,
and the supervised :class:`EvaluationEngine` recovery loops at
``jobs=2``.  No test sleeps to *wait* for a condition — every blocking
wait is bounded by the deadline machinery under test.
"""

import dataclasses
import pickle
import signal
import sqlite3
import time
import warnings
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.bo.space import SequenceSpace
from repro.engine import EvaluationEngine, EvaluatorSpec, PersistentQoRCache
from repro.engine import faults
from repro.engine.faults import (
    DeadlineExceeded,
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    PoisonInputError,
    PoolUnrecoverableError,
    RetryPolicy,
    build_cache_hook,
    build_compute_guard,
    deadline,
)


def _no_sleep(_seconds: float) -> None:
    pass


#: Zero-backoff policy so recovery tests never sleep between retries.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def spec():
    return EvaluatorSpec.for_circuit("adder", width=4)


@pytest.fixture(scope="module")
def batch():
    space = SequenceSpace(sequence_length=3)
    rows = space.sample(3, np.random.default_rng(0))
    return [tuple(space.to_names(row)) for row in rows]


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay_for(2, "cell-a") == policy.delay_for(2, "cell-a")
        assert policy.delay_for(2, "cell-a") != policy.delay_for(2, "cell-b")

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.25, backoff_factor=2.0,
                             backoff_max=1.0, jitter=0.0)
        assert policy.delay_for(1) == 0.25
        assert policy.delay_for(2) == 0.5
        assert policy.delay_for(3) == 1.0
        assert policy.delay_for(10) == 1.0  # capped
        assert policy.delay_for(0) == 0.0

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_max=10.0, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.delay_for(attempt, "k")
            assert 1.0 <= delay <= 1.5

    def test_classification(self):
        retryable = [
            DeadlineExceeded("evaluation", 1.0),
            InjectedCrash("boom"),
            sqlite3.OperationalError("database is locked"),
            ConnectionError("reset"),
            BrokenProcessPool("pool died"),
        ]
        fatal = [
            ValueError("optimiser bug"),
            RuntimeError("evaluator bug"),
            PoisonInputError(("rewrite",), 3),
            PoolUnrecoverableError("gave up"),
        ]
        assert all(RetryPolicy.retryable(error) for error in retryable)
        assert not any(RetryPolicy.retryable(error) for error in fatal)

    def test_payload_roundtrip(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1,
                             backoff_factor=3.0, backoff_max=2.0,
                             jitter=0.25, max_pool_rebuilds=4)
        assert RetryPolicy.from_payload(policy.to_payload()) == policy

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_rebuilds=-1)


class TestErrorPickling:
    """Fault errors cross the process boundary and must unpickle intact."""

    def test_deadline_exceeded_roundtrip(self):
        error = DeadlineExceeded("cell", 2.5, ("rewrite", "balance"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.scope == "cell"
        assert clone.timeout == 2.5
        assert clone.sequence == ("rewrite", "balance")

    def test_poison_input_roundtrip(self):
        error = PoisonInputError(("refactor",), 3, ValueError("cause"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.sequence == ("refactor",)
        assert clone.attempts == 3


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor")
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", at=-1)

    def test_matches_and_covers(self):
        event = FaultEvent(kind="crash", cell="c1", attempt=1, at=2, count=3)
        assert event.matches("c1", 1)
        assert not event.matches("c1", 0)
        assert not event.matches("c2", 1)
        assert FaultEvent(kind="crash").matches("anything", 0)
        assert [event.covers(i) for i in range(6)] == [
            False, False, True, True, True, False]

    def test_json_roundtrip(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", cell="a", at=1),
            FaultEvent(kind="hang", cell="b", attempt=1, duration=9.0),
            FaultEvent(kind="cache_error", count=2),
        ), seed=42)
        assert FaultPlan.from_json(plan.to_json()) == plan
        # Canonical form: serialising twice is byte-stable.
        assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()

    def test_from_argument_inline_and_file(self, tmp_path):
        plan = FaultPlan(events=(FaultEvent(kind="hang", cell="x"),), seed=3)
        assert FaultPlan.from_argument(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_argument(str(path)) == plan

    def test_from_argument_rejects_garbage(self, tmp_path):
        with pytest.raises(ValueError):
            FaultPlan.from_argument("no-such-file.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            FaultPlan.from_argument(str(bad))

    def test_random_is_seeded_and_recoverable(self):
        cells = ["c0", "c1", "c2"]
        plan = FaultPlan.random(123, cells)
        assert plan == FaultPlan.random(123, cells)
        assert plan != FaultPlan.random(124, cells)
        assert 1 <= len(plan.events) <= 4
        for event in plan.events:
            # Attempt-0-only events are what makes any seed recoverable
            # under a default retry budget.
            assert event.attempt == 0
            assert event.cell in cells

    def test_events_for(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", cell="a", attempt=0),
            FaultEvent(kind="hang", cell="a", attempt=1),
            FaultEvent(kind="cache_error"),
        ))
        kinds = [e.kind for e in plan.events_for("a", 0)]
        assert kinds == ["crash", "cache_error"]
        assert [e.kind for e in plan.events_for("b", 1)] == []


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadline:
    def test_none_is_noop(self):
        with deadline(None):
            pass

    def test_interrupts_blocking_call(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            with deadline(0.05, sequence=("rewrite",)):
                time.sleep(30)  # interrupted by SIGALRM, not waited out
        assert excinfo.value.scope == "evaluation"
        assert excinfo.value.timeout == 0.05
        assert excinfo.value.sequence == ("rewrite",)

    def test_nested_inner_fires_first(self):
        with deadline(30.0, scope="cell"):
            with pytest.raises(DeadlineExceeded) as excinfo:
                with deadline(0.05, sequence=("balance",)):
                    time.sleep(30)
            assert excinfo.value.scope == "evaluation"

    def test_cell_deadline_attaches_inflight_sequence(self):
        with pytest.raises(DeadlineExceeded) as excinfo:
            with deadline(0.05, scope="cell"):
                with deadline(30.0, sequence=("rewrite", "refactor")):
                    time.sleep(30)
        assert excinfo.value.scope == "cell"
        assert excinfo.value.sequence == ("rewrite", "refactor")

    def test_timer_disarmed_after_exit(self):
        with deadline(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


# ---------------------------------------------------------------------------
# Injection hooks
# ---------------------------------------------------------------------------
class TestComputeGuard:
    def test_nothing_to_do_returns_none(self):
        assert build_compute_guard(None, None) is None

    def test_inactive_context_passes_through(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash"),))
        guard = build_compute_guard(plan.to_json(), None)
        faults.deactivate()
        assert guard(("rewrite",), lambda: 7) == 7

    def test_crash_fires_at_its_ordinal_then_clears(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", cell="c", at=1),))
        guard = build_compute_guard(plan.to_json(), None)
        faults.activate("c", 0, hard_crash=False)
        try:
            assert guard(("a",), lambda: 1) == 1  # ordinal 0: no event
            with pytest.raises(InjectedCrash):
                guard(("b",), lambda: 2)  # ordinal 1: crash
            assert guard(("c",), lambda: 3) == 3  # ordinal 2: clear again
        finally:
            faults.deactivate()

    def test_retried_attempt_replays_from_ordinal_zero(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", cell="c", at=0),))
        guard = build_compute_guard(plan.to_json(), None)
        faults.activate("c", 0, hard_crash=False)
        try:
            with pytest.raises(InjectedCrash):
                guard(("a",), lambda: 1)
            # The retry attempt has its own schedule: no attempt-1 events.
            faults.activate("c", 1, hard_crash=False)
            assert guard(("a",), lambda: 1) == 1
        finally:
            faults.deactivate()

    def test_hang_is_interrupted_by_eval_timeout(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="hang", cell="c", at=0, duration=30.0),))
        guard = build_compute_guard(plan.to_json(), 0.05)
        faults.activate("c", 0, hard_crash=False)
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                guard(("a", "b"), lambda: 1)
            assert excinfo.value.sequence == ("a", "b")
        finally:
            faults.deactivate()


class TestCacheHook:
    def test_no_cache_events_returns_none(self):
        assert build_cache_hook(None) is None
        plan = FaultPlan(events=(FaultEvent(kind="crash"),))
        assert build_cache_hook(plan.to_json()) is None

    def test_fires_at_cache_op_ordinal(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="cache_error", cell="c", at=1),))
        hook = build_cache_hook(plan.to_json())
        faults.activate("c", 0, hard_crash=False)
        try:
            hook("get")  # ordinal 0: clean
            with pytest.raises(sqlite3.OperationalError):
                hook("put")  # ordinal 1: injected fault
            hook("put")  # ordinal 2: clean again
        finally:
            faults.deactivate()


# ---------------------------------------------------------------------------
# Cache retry / degrade
# ---------------------------------------------------------------------------
def _flaky_hook(op: str, failures: int):
    """A hook raising OperationalError for the first ``failures`` ops."""
    remaining = {"count": failures}

    def hook(op_name: str) -> None:
        if op_name == op and remaining["count"] > 0:
            remaining["count"] -= 1
            raise sqlite3.OperationalError("database is locked")

    return hook


class TestCacheRetryAndDegrade:
    def test_transient_error_is_retried_not_degraded(self, tmp_path):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, backoff_base=0.1, jitter=0.0)
        cache = PersistentQoRCache(tmp_path, retry=policy,
                                   sleep=sleeps.append,
                                   fault_hook=_flaky_hook("put", 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any degrade warning fails
            cache.put("ck", ("rewrite",), 10, 3)
        assert not cache.degraded
        assert cache.get("ck", ("rewrite",)) == (10, 3)
        assert sleeps == [policy.delay_for(1, "cache:put")]
        cache.close()

    def test_degrades_after_exhaustion_with_one_warning(self, tmp_path):
        cache = PersistentQoRCache(
            tmp_path, retry=FAST_RETRY, sleep=_no_sleep,
            fault_hook=_flaky_hook("put", 10_000))
        with pytest.warns(RuntimeWarning, match="memory-only") as caught:
            cache.put("ck", ("rewrite",), 10, 3)
        assert len(caught) == 1
        assert cache.degraded
        # Memory fallback still serves results; no further warnings.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put("ck", ("balance",), 7, 2)
            assert cache.get("ck", ("rewrite",)) == (10, 3)
            assert cache.get("ck", ("balance",)) == (7, 2)
            assert cache.get("ck", ("missing",)) is None
            assert len(cache) == 2
        cache.close()

    def test_connect_failure_degrades_at_construction(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache = PersistentQoRCache(
                tmp_path, retry=FAST_RETRY, sleep=_no_sleep,
                fault_hook=_flaky_hook("connect", 10_000))
        assert cache.degraded
        cache.put("ck", ("rewrite",), 5, 1)
        assert cache.get("ck", ("rewrite",)) == (5, 1)
        cache.close()

    def test_misconfigured_path_still_raises(self, tmp_path):
        not_a_dir = tmp_path / "file.txt"
        not_a_dir.write_text("occupied")
        with pytest.raises(ValueError):
            PersistentQoRCache(not_a_dir / "sub")

    def test_get_many_hits_and_misses(self, tmp_path):
        cache = PersistentQoRCache(tmp_path)
        cache.put_many("ck", [(("a",), 1, 1), (("b",), 2, 2)])
        results = cache.get_many("ck", [("a",), ("missing",), ("b",)])
        assert results == [(1, 1), None, (2, 2)]
        assert cache.hits == 2
        assert cache.misses == 1
        cache.close()

    def test_get_many_degraded_uses_memory(self, tmp_path):
        cache = PersistentQoRCache(
            tmp_path, retry=FAST_RETRY, sleep=_no_sleep,
            fault_hook=_flaky_hook("get_many", 10_000))
        cache.put("ck", ("a",), 1, 1)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            first = cache.get_many("ck", [("a",)])
        # The entry predates the degrade and lived only in SQLite, so
        # the memory fallback misses it — but later writes are served.
        assert first == [None]
        cache.put("ck", ("b",), 2, 2)
        assert cache.get_many("ck", [("b",)]) == [(2, 2)]
        cache.close()


# ---------------------------------------------------------------------------
# Supervised EvaluationEngine (jobs=2, real process pools)
# ---------------------------------------------------------------------------
class TestSupervisedEngine:
    def _expected(self, spec, batch):
        with EvaluationEngine(spec, jobs=1) as engine:
            return engine.compute_batch(batch)

    def test_supervision_is_opt_in(self, spec):
        with EvaluationEngine(spec, jobs=2) as engine:
            assert not engine._supervised
        with EvaluationEngine(spec, jobs=2, eval_timeout=1.0) as engine:
            assert engine._supervised

    def test_worker_crash_recovery_matches_serial(self, spec, batch):
        plan = FaultPlan(events=(FaultEvent(kind="crash", at=0),), seed=1)
        faulty = dataclasses.replace(spec, fault_plan=plan.to_json())
        with EvaluationEngine(faulty, jobs=2, retry=FAST_RETRY,
                              sleep=_no_sleep) as engine:
            records = engine.compute_batch(batch)
            assert engine._rebuilds >= 1
        assert records == self._expected(spec, batch)

    def test_hang_deadline_recovery_matches_serial(self, spec, batch):
        plan = FaultPlan(events=(
            FaultEvent(kind="hang", at=0, duration=30.0),), seed=2)
        faulty = dataclasses.replace(spec, fault_plan=plan.to_json())
        with EvaluationEngine(faulty, jobs=2, eval_timeout=0.75,
                              retry=FAST_RETRY, sleep=_no_sleep) as engine:
            records = engine.compute_batch(batch)
        assert records == self._expected(spec, batch)

    def test_persistent_hang_becomes_poison_input(self, spec, batch):
        plan = FaultPlan(events=(
            FaultEvent(kind="hang", at=0, count=10_000, duration=30.0),),
            seed=3)
        faulty = dataclasses.replace(spec, fault_plan=plan.to_json())
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        with EvaluationEngine(faulty, jobs=2, eval_timeout=0.3,
                              retry=policy, sleep=_no_sleep) as engine:
            with pytest.raises(PoisonInputError) as excinfo:
                engine.compute_batch(batch[:2])
        assert excinfo.value.attempts == 2

    def test_repeated_crashes_exhaust_rebuild_budget(self, spec, batch):
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", attempt=0, at=0, count=10_000),
            FaultEvent(kind="crash", attempt=1, at=0, count=10_000),
        ), seed=4)
        faulty = dataclasses.replace(spec, fault_plan=plan.to_json())
        policy = RetryPolicy(max_attempts=10, backoff_base=0.0, jitter=0.0,
                             max_pool_rebuilds=1)
        with EvaluationEngine(faulty, jobs=2, retry=policy,
                              sleep=_no_sleep) as engine:
            with pytest.raises(PoolUnrecoverableError):
                engine.compute_batch(batch)
