"""Tests for the persistent on-disk QoR cache."""

import pytest

from repro.circuits import make_adder
from repro.engine import PersistentQoRCache
from repro.qor import QoREvaluator


@pytest.fixture()
def cache(tmp_path):
    with PersistentQoRCache(tmp_path) as cache:
        yield cache


class TestCacheBasics:
    def test_roundtrip(self, cache):
        assert cache.get("circ", ("balance", "rewrite")) is None
        cache.put("circ", ("balance", "rewrite"), 12, 3)
        assert cache.get("circ", ("balance", "rewrite")) == (12, 3)
        assert len(cache) == 1

    def test_keys_are_namespaced_by_circuit(self, cache):
        cache.put("a", ("balance",), 10, 2)
        assert cache.get("b", ("balance",)) is None

    def test_put_is_idempotent(self, cache):
        cache.put("circ", ("fraig",), 9, 2)
        cache.put("circ", ("fraig",), 9, 2)
        assert len(cache) == 1

    def test_put_many(self, cache):
        cache.put_many("circ", [(("balance",), 10, 2), (("rewrite",), 11, 3)])
        assert cache.get("circ", ("rewrite",)) == (11, 3)
        assert len(cache) == 2

    def test_hit_miss_counters(self, cache):
        cache.put("circ", ("balance",), 10, 2)
        cache.get("circ", ("balance",))
        cache.get("circ", ("missing",))
        assert cache.hits == 1
        assert cache.misses == 1

    def test_explicit_database_path(self, tmp_path):
        with PersistentQoRCache(tmp_path / "sub" / "custom.sqlite") as cache:
            cache.put("circ", ("balance",), 1, 1)
        assert (tmp_path / "sub" / "custom.sqlite").exists()


class TestEvaluatorIntegration:
    def test_roundtrip_across_two_evaluator_instances(self, tmp_path):
        """A second evaluator on the same circuit computes nothing."""
        aig = make_adder(4)
        sequences = [["balance"], ["rewrite", "fraig"], ["dsdb"]]

        with PersistentQoRCache(tmp_path) as cache:
            first = QoREvaluator(aig, persistent_cache=cache)
            first_records = [first.evaluate(seq) for seq in sequences]
            assert first.num_computed == 3
            assert first.num_persistent_hits == 0

        # Fresh cache handle + fresh evaluator: everything is served from
        # disk, nothing is recomputed, records are bit-identical.
        with PersistentQoRCache(tmp_path) as cache:
            second = QoREvaluator(make_adder(4), persistent_cache=cache)
            second_records = [second.evaluate(seq) for seq in sequences]
            assert second_records == first_records
            assert second.num_computed == 0
            assert second.num_persistent_hits == 3
            # Persistent hits still count as per-run evaluations.
            assert second.num_evaluations == 3
            assert len(second.history) == 3

    def test_memo_hit_shadows_persistent_hit(self, tmp_path):
        with PersistentQoRCache(tmp_path) as cache:
            evaluator = QoREvaluator(make_adder(4), persistent_cache=cache)
            evaluator.evaluate(["balance"])
            evaluator.evaluate(["balance"])  # in-memory memo hit
            assert evaluator.num_evaluations == 1
            assert evaluator.num_persistent_hits == 0

    def test_cache_key_is_structural(self, tmp_path):
        """Two independently generated copies of a circuit share entries."""
        with PersistentQoRCache(tmp_path) as cache:
            a = QoREvaluator(make_adder(4), persistent_cache=cache)
            b = QoREvaluator(make_adder(4), persistent_cache=cache)
            assert a.cache_key == b.cache_key
            c = QoREvaluator(make_adder(5), persistent_cache=cache)
            assert c.cache_key != a.cache_key
            d = QoREvaluator(make_adder(4), lut_size=4, persistent_cache=cache)
            assert d.cache_key != a.cache_key
