"""Tests for the suggest/observe batch-optimiser protocol."""

import numpy as np
import pytest

from repro.baselines import GeneticAlgorithm, GreedySearch, RandomSearch
from repro.baselines.rl import A2COptimiser, PPOOptimiser
from repro.bo import BOiLS, SequenceSpace, StandardBO
from repro.bo.base import SequenceOptimiser
from repro.circuits import make_adder
from repro.engine import EvaluationEngine, EvaluatorSpec
from repro.qor import QoREvaluator


@pytest.fixture(scope="module")
def adder():
    return make_adder(4)


@pytest.fixture(scope="module")
def space():
    return SequenceSpace(sequence_length=4)


class TestProtocolSurface:
    def test_batch_capable_optimisers(self, space):
        assert RandomSearch(space=space).supports_batch
        assert GeneticAlgorithm(space=space).supports_batch
        assert BOiLS(space=space).supports_batch
        assert StandardBO(space=space).supports_batch
        assert GreedySearch(space=space).supports_batch
        assert A2COptimiser(space=space).supports_batch
        assert PPOOptimiser(space=space).supports_batch

    def test_non_batch_optimiser_raises(self, space):
        class MinimalOptimiser(SequenceOptimiser):
            def optimise(self, evaluator, budget):  # pragma: no cover
                raise NotImplementedError

        minimal = MinimalOptimiser(space=space)
        assert not minimal.supports_batch
        with pytest.raises(NotImplementedError):
            minimal.suggest(2)

    def test_suggest_respects_n(self, space):
        optimiser = RandomSearch(space=space, seed=0)
        rows = optimiser.suggest(5)
        assert rows.shape == (5, space.sequence_length)

    def test_random_search_terminates_on_exhausted_space(self, adder):
        """Budget beyond |Alg^K| stops after testing every sequence."""
        tiny = SequenceSpace(sequence_length=1)  # 11 distinct sequences
        result = RandomSearch(space=tiny, seed=0).optimise(
            QoREvaluator(adder), budget=tiny.cardinality + 5)
        assert result.num_evaluations == tiny.cardinality


class TestManualDrive:
    def test_random_search_external_loop_matches_optimise(self, adder, space):
        """Driving suggest/observe by hand reproduces optimise() exactly."""
        budget = 8
        reference = RandomSearch(space=space, seed=11).optimise(
            QoREvaluator(adder), budget=budget)

        optimiser = RandomSearch(space=space, seed=11)
        optimiser._seen = set()
        optimiser._primary_drawn = False
        evaluator = QoREvaluator(adder)
        while evaluator.num_evaluations < budget:
            rows = optimiser.suggest(budget - evaluator.num_evaluations)
            records = evaluator.evaluate_many(
                [space.to_names(row) for row in rows])
            optimiser.observe(rows, records)
        assert [r.qor_improvement for r in evaluator.history] == reference.history

    def test_ga_observe_applies_elitism(self, adder, space):
        optimiser = GeneticAlgorithm(space=space, seed=2)
        evaluator = QoREvaluator(adder)
        rows = optimiser.suggest(6)
        records = evaluator.evaluate_many([space.to_names(r) for r in rows])
        optimiser.observe(rows, records)
        best_fitness = float(np.max(optimiser._fitness))
        rows2 = optimiser.suggest(6)
        records2 = evaluator.evaluate_many([space.to_names(r) for r in rows2])
        optimiser.observe(rows2, records2)
        # Elitism: the best survivor never gets worse.
        assert float(np.max(optimiser._fitness)) >= best_fitness


class TestEngineEquivalence:
    """Batch path (engine attached) vs serial path: identical traces."""

    @pytest.mark.parametrize("method_factory,kwargs", [
        (RandomSearch, {}),
        (GeneticAlgorithm, {}),
        (BOiLS, {"num_initial": 3, "local_search_queries": 30, "adam_steps": 1}),
    ])
    def test_serial_vs_engine_backed(self, space, method_factory, kwargs):
        spec = EvaluatorSpec.for_circuit("adder", width=4)
        budget = 8

        serial_evaluator = spec.build_evaluator()
        serial = method_factory(space=space, seed=4, **kwargs).optimise(
            serial_evaluator, budget=budget)

        engine_evaluator = spec.build_evaluator()
        with EvaluationEngine(spec, jobs=2) as engine:
            engine_evaluator.attach_engine(engine)
            batched = method_factory(space=space, seed=4, **kwargs).optimise(
                engine_evaluator, budget=budget)

        assert batched.history == serial.history
        assert batched.best_sequence == serial.best_sequence
        assert batched.num_evaluations == serial.num_evaluations


class TestBOiLSBatchSize:
    def test_batch_size_proposes_distinct_candidates(self, adder, space):
        optimiser = BOiLS(space=space, seed=0, num_initial=4, batch_size=3,
                          local_search_queries=30, adam_steps=1)
        evaluator = QoREvaluator(adder)
        result = optimiser.optimise(evaluator, budget=10)
        assert result.num_evaluations == 10
        sequences = [record.sequence for record in evaluator.history]
        assert len(sequences) == len(set(sequences))
