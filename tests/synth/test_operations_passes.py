"""Tests for the eleven synthesis passes: equivalence and effect.

Every pass must preserve functional equivalence on every test circuit;
individual classes additionally check the pass-specific contracts (balance
reduces or preserves depth, rewrite never grows the node count, the ``-z``
variants are allowed to keep the size, etc.).
"""

import pytest

from repro.aig.simulation import functionally_equivalent
from repro.circuits import make_adder, make_max, make_multiplier, make_square_root
from repro.synth.balance import balance
from repro.synth.fraig import fraig
from repro.synth.refactor import refactor, refactor_z
from repro.synth.restructure import blut, dsdb, sopb
from repro.synth.resub import resub, resub_z
from repro.synth.rewrite import rewrite, rewrite_z
from repro.synth.operations import list_operations


ALL_PASSES = [
    ("rewrite", rewrite),
    ("rewrite -z", rewrite_z),
    ("refactor", refactor),
    ("refactor -z", refactor_z),
    ("resub", resub),
    ("resub -z", resub_z),
    ("balance", balance),
    ("fraig", fraig),
    ("sopb", sopb),
    ("blut", blut),
    ("dsdb", dsdb),
]


@pytest.fixture(scope="module")
def circuits():
    return {
        "adder": make_adder(4),
        "multiplier": make_multiplier(3),
        "sqrt": make_square_root(6),
        "max": make_max(4, num_words=2),
    }


class TestEquivalence:
    @pytest.mark.parametrize("name,op", ALL_PASSES, ids=[p[0] for p in ALL_PASSES])
    @pytest.mark.parametrize("circuit_name", ["adder", "multiplier", "sqrt", "max"])
    def test_pass_preserves_function(self, name, op, circuit_name, circuits):
        original = circuits[circuit_name]
        transformed = op(original)
        assert functionally_equivalent(original, transformed), \
            f"{name} broke {circuit_name}"

    @pytest.mark.parametrize("name,op", ALL_PASSES, ids=[p[0] for p in ALL_PASSES])
    def test_pass_preserves_interface(self, name, op, circuits):
        original = circuits["adder"]
        transformed = op(original)
        assert transformed.num_pis == original.num_pis
        assert transformed.num_pos == original.num_pos

    @pytest.mark.parametrize("name,op", ALL_PASSES, ids=[p[0] for p in ALL_PASSES])
    def test_pass_on_trivial_circuit(self, name, op):
        """Passes must cope with circuits that have no AND nodes at all."""
        from repro.aig.graph import AIG

        aig = AIG()
        a = aig.add_pi()
        aig.add_po(a)
        out = op(aig)
        assert out.num_pos == 1
        assert functionally_equivalent(aig, out)


class TestRewrite:
    def test_never_increases_nodes(self, circuits):
        for aig in circuits.values():
            assert rewrite(aig).num_ands <= aig.num_ands

    def test_reduces_redundant_logic(self):
        """A circuit with an obviously redundant reconvergent cone shrinks."""
        from repro.aig.graph import AIG

        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        # (a & b) | (a & b) written through two separate structures plus
        # extra indirection: rewriting should collapse the duplication.
        x1 = aig.add_and(a, b)
        x2 = aig.add_and(b, a)
        y = aig.add_or(x1, x2)
        aig.add_po(y)
        out = rewrite(aig)
        assert out.num_ands <= aig.num_ands

    def test_zero_cost_variant_allows_equal_size(self, circuits):
        out = rewrite_z(circuits["adder"])
        assert functionally_equivalent(circuits["adder"], out)


class TestRefactor:
    def test_never_increases_nodes(self, circuits):
        for aig in circuits.values():
            assert refactor(aig).num_ands <= aig.num_ands

    def test_refactor_z_equivalent(self, circuits):
        out = refactor_z(circuits["multiplier"])
        assert functionally_equivalent(circuits["multiplier"], out)


class TestResub:
    def test_never_increases_nodes(self, circuits):
        for aig in circuits.values():
            assert resub(aig).num_ands <= aig.num_ands

    def test_finds_shared_logic(self):
        """Resubstitution merges a node with an existing equal divisor."""
        from repro.aig.graph import AIG, lit_not

        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        shared = aig.add_and(a, b)
        aig.add_po(aig.add_and(shared, c))
        # A structurally different computation of (a & b) & c via
        # (a & c) & b — resub may re-express it using the shared node.
        other = aig.add_and(aig.add_and(a, c), b)
        aig.add_po(other)
        out = resub(aig)
        assert functionally_equivalent(aig, out)
        assert out.num_ands <= aig.num_ands


class TestBalance:
    def test_depth_not_increased(self, circuits):
        for aig in circuits.values():
            assert balance(aig).depth() <= aig.depth()

    def test_balances_linear_and_chain(self):
        from repro.aig.graph import AIG

        aig = AIG()
        pis = [aig.add_pi() for _ in range(8)]
        acc = pis[0]
        for literal in pis[1:]:
            acc = aig.add_and(acc, literal)
        aig.add_po(acc)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert functionally_equivalent(aig, balanced)

    def test_handles_constant_false_supergate(self):
        from repro.aig.graph import AIG, lit_not

        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        x = aig.add_and(a, b)
        y = aig.add_and(x, lit_not(a))  # contains a and ~a -> constant 0
        aig.add_po(y)
        balanced = balance(aig)
        assert functionally_equivalent(aig, balanced)


class TestFraig:
    def test_merges_duplicate_cones(self):
        from repro.aig.graph import AIG

        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        # Two functionally identical but structurally different cones.
        first = aig.add_and(aig.add_and(a, b), c)
        second = aig.add_and(a, aig.add_and(b, c))
        aig.add_po(first)
        aig.add_po(second)
        out = fraig(aig)
        assert functionally_equivalent(aig, out)
        assert out.num_ands < aig.num_ands

    def test_merges_complemented_equivalences(self):
        from repro.aig.graph import AIG, lit_not

        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        nand = lit_not(aig.add_and(a, b))
        nor_of_nots = aig.add_and(lit_not(a), lit_not(b))  # = ~(a | b)
        aig.add_po(nand)
        aig.add_po(aig.add_or(a, b))
        aig.add_po(nor_of_nots)
        out = fraig(aig)
        assert functionally_equivalent(aig, out)

    def test_never_increases_nodes(self, circuits):
        for aig in circuits.values():
            assert fraig(aig).num_ands <= aig.num_ands


class TestDelayPasses:
    @pytest.mark.parametrize("op", [sopb, blut, dsdb], ids=["sopb", "blut", "dsdb"])
    def test_depth_not_increased(self, op, circuits):
        for aig in circuits.values():
            assert op(aig).depth() <= aig.depth()

    def test_sopb_reduces_depth_of_unbalanced_cone(self):
        from repro.aig.graph import AIG

        aig = AIG()
        pis = [aig.add_pi() for _ in range(6)]
        acc = pis[0]
        for literal in pis[1:]:
            acc = aig.add_or(acc, literal)
        aig.add_po(acc)
        out = sopb(aig)
        assert out.depth() <= aig.depth()
        assert functionally_equivalent(aig, out)


class TestRegistryConsistency:
    def test_all_registered_operations_are_tested(self):
        registered = {op.name for op in list_operations()}
        tested = {name for name, _ in ALL_PASSES}
        assert registered == tested
