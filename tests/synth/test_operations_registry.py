"""Tests for the operation registry, sequence utilities and flows."""

import pytest

from repro.aig.simulation import functionally_equivalent
from repro.synth.flows import (
    RESYN2_SEQUENCE,
    apply_flow,
    available_flows,
    named_flow,
    resyn2,
)
from repro.synth.operations import (
    OPERATION_ALPHABET,
    apply_operation,
    apply_sequence,
    get_operation,
    list_operations,
    sequence_to_indices,
    sequence_to_names,
    sequence_to_string,
    string_to_sequence,
)


class TestRegistry:
    def test_alphabet_matches_paper(self):
        assert OPERATION_ALPHABET == [
            "rewrite", "rewrite -z", "refactor", "refactor -z",
            "resub", "resub -z", "balance", "fraig", "sopb", "blut", "dsdb",
        ]

    def test_alphabet_size_is_eleven(self):
        assert len(OPERATION_ALPHABET) == 11

    def test_lookup_by_name_index_mnemonic(self):
        assert get_operation("balance").name == "balance"
        assert get_operation(6).name == "balance"
        assert get_operation("Bl").name == "balance"

    def test_unknown_operation_raises(self):
        with pytest.raises(KeyError):
            get_operation("does-not-exist")
        with pytest.raises(KeyError):
            get_operation(99)

    def test_mnemonics_are_unique(self):
        mnemonics = [op.mnemonic for op in list_operations()]
        assert len(mnemonics) == len(set(mnemonics))

    def test_operation_is_callable(self, small_adder):
        out = get_operation("balance")(small_adder)
        assert functionally_equivalent(small_adder, out)


class TestSequenceUtilities:
    def test_sequence_to_names_roundtrip(self):
        seq = ["rewrite", 6, "Rf"]
        assert sequence_to_names(seq) == ["rewrite", "balance", "refactor"]

    def test_sequence_to_indices(self):
        assert sequence_to_indices(["rewrite", "balance"]) == [0, 6]

    def test_sequence_to_string_and_back(self):
        names = ["rewrite", "refactor", "dsdb", "balance"]
        text = sequence_to_string(names)
        assert text == "RwRfDsBl"
        assert string_to_sequence(text) == names

    def test_string_to_sequence_rejects_odd_length(self):
        with pytest.raises(ValueError):
            string_to_sequence("RwR")

    def test_string_to_sequence_rejects_unknown(self):
        with pytest.raises(ValueError):
            string_to_sequence("Zz")


class TestApply:
    def test_apply_operation_equivalent(self, small_adder):
        out = apply_operation(small_adder, "rewrite")
        assert functionally_equivalent(small_adder, out)

    def test_apply_sequence_equivalent(self, small_adder):
        out = apply_sequence(small_adder, ["balance", "rewrite", "refactor"])
        assert functionally_equivalent(small_adder, out)

    def test_apply_empty_sequence_is_identity_object(self, small_adder):
        assert apply_sequence(small_adder, []) is small_adder

    def test_apply_sequence_accepts_indices(self, small_adder):
        out = apply_sequence(small_adder, [6, 0])
        assert functionally_equivalent(small_adder, out)


class TestFlows:
    def test_resyn2_is_ten_steps(self):
        assert len(RESYN2_SEQUENCE) == 10
        assert RESYN2_SEQUENCE[0] == "balance"

    def test_resyn2_preserves_function(self, small_adder):
        assert functionally_equivalent(small_adder, resyn2(small_adder))

    def test_resyn2_does_not_grow_the_network(self, small_multiplier):
        out = resyn2(small_multiplier)
        assert out.num_ands <= small_multiplier.num_ands * 1.1

    def test_named_flow_lookup(self):
        assert named_flow("resyn2") == RESYN2_SEQUENCE
        with pytest.raises(KeyError):
            named_flow("nope")

    def test_available_flows(self):
        flows = available_flows()
        assert "resyn2" in flows and "resyn" in flows

    def test_apply_flow(self, small_adder):
        out = apply_flow(small_adder, "resyn")
        assert functionally_equivalent(small_adder, out)
