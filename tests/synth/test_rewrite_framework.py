"""Tests for the shared resynthesis framework (MFFC, rebuild)."""

import pytest

from repro.aig.cuts import Cut
from repro.aig.graph import AIG, lit_var
from repro.aig.simulation import functionally_equivalent
from repro.synth.rewrite_framework import (
    Replacement,
    copy_cone_builder,
    mffc_size,
    rebuild_with_replacements,
)


@pytest.fixture()
def shared_cone():
    """Root cone where one internal node is shared with another output."""
    aig = AIG()
    a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
    ab = aig.add_and(a, b)
    root = aig.add_and(ab, c)
    aig.add_po(root)
    aig.add_po(ab)      # ab has an external fanout -> not in root's MFFC
    return aig, lit_var(root), lit_var(ab), [lit_var(x) for x in (a, b, c)]


class TestMffc:
    def test_exclusive_cone_counts_all(self):
        aig = AIG()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        ab = aig.add_and(a, b)
        root = aig.add_and(ab, c)
        aig.add_po(root)
        cut = Cut(tuple(sorted(lit_var(x) for x in (a, b, c))))
        assert mffc_size(aig, lit_var(root), cut, aig.fanout_counts()) == 2

    def test_shared_node_excluded(self, shared_cone):
        aig, root, ab, pis = shared_cone
        cut = Cut(tuple(sorted(pis)))
        # ``ab`` feeds a PO too, so only the root itself is in the MFFC.
        assert mffc_size(aig, root, cut, aig.fanout_counts()) == 1


class TestRebuild:
    def test_identity_rebuild_preserves_function(self, small_adder):
        rebuilt = rebuild_with_replacements(small_adder, {})
        assert functionally_equivalent(small_adder, rebuilt)
        assert rebuilt.num_ands <= small_adder.num_ands

    def test_constant_replacement_removes_cone(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        x = aig.add_and(a, b)
        y = aig.add_and(x, aig.add_and(a, b) ^ 1)  # x & ~x -> constant 0
        # Actually build something non-trivially dead: out = y | a
        out = aig.add_or(y, a)
        aig.add_po(out)
        cut = Cut(tuple(sorted([lit_var(a), lit_var(b)])))
        replacement = Replacement(cut=cut, builder=lambda new, leaves, arrival: 0)
        rebuilt = rebuild_with_replacements(aig, {lit_var(y): replacement})
        assert functionally_equivalent(aig, rebuilt)
        assert rebuilt.num_ands < aig.num_ands

    def test_copy_cone_builder_reproduces_cone(self, shared_cone):
        aig, root, ab, pis = shared_cone
        cut = Cut(tuple(sorted(pis)))
        builder = copy_cone_builder(aig, root, cut)
        replacement = Replacement(cut=cut, builder=builder)
        rebuilt = rebuild_with_replacements(aig, {root: replacement})
        assert functionally_equivalent(aig, rebuilt)
        assert rebuilt.num_ands == aig.num_ands

    def test_replacement_with_complemented_output_lit(self):
        """Builders may return complemented literals; POs must stay correct."""
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        y = aig.add_and(a, b)
        aig.add_po(y ^ 1)  # ~(a & b)
        cut = Cut(tuple(sorted([lit_var(a), lit_var(b)])))

        def builder(new, leaves, arrival):
            return new.add_and(leaves[0], leaves[1])

        rebuilt = rebuild_with_replacements(aig, {lit_var(y): Replacement(cut, builder)})
        assert functionally_equivalent(aig, rebuilt)
