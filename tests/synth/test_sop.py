"""Tests for SOP algebra and algebraic factoring."""

import pytest

from repro.aig import truth
from repro.aig.graph import AIG
from repro.aig.simulation import exhaustive_output_tables
from repro.synth import sop


class TestCubeAlgebra:
    def test_cube_literals(self):
        assert sop.cube_literals((0b101, 0b010)) == [(0, False), (1, True), (2, False)]

    def test_cover_literal_count(self):
        cover = [(0b1, 0b0), (0b0, 0b11)]
        assert sop.cover_literal_count(cover) == 3

    def test_cube_divide_success(self):
        # (x0 x1 ~x2) / (x0) = (x1 ~x2)
        assert sop.cube_divide((0b011, 0b100), (0b001, 0)) == (0b010, 0b100)

    def test_cube_divide_failure(self):
        assert sop.cube_divide((0b01, 0), (0b10, 0)) is None

    def test_cover_divide(self):
        # f = x0 x1 + x0 x2 + x3 ; divide by x0 -> quotient {x1, x2}, rem {x3}
        cover = [(0b0011, 0), (0b0101, 0), (0b1000, 0)]
        quotient, remainder = sop.cover_divide(cover, [(0b0001, 0)])
        assert set(quotient) == {(0b0010, 0), (0b0100, 0)}
        assert remainder == [(0b1000, 0)]

    def test_cover_divide_empty_divisor(self):
        cover = [(0b1, 0)]
        quotient, remainder = sop.cover_divide(cover, [])
        assert quotient == []
        assert remainder == cover

    def test_best_literal_divisor(self):
        cover = [(0b011, 0), (0b001, 0b100), (0b010, 0)]
        assert sop.best_literal_divisor(cover) == (0, False) or \
            sop.best_literal_divisor(cover) == (1, False)

    def test_best_literal_divisor_none(self):
        cover = [(0b01, 0), (0b10, 0)]
        assert sop.best_literal_divisor(cover) is None


class TestFactoredForms:
    def test_literal_count(self):
        ff = sop.and_node([sop.literal_node(0), sop.or_node([
            sop.literal_node(1), sop.literal_node(2, True)])])
        assert ff.literal_count() == 3

    def test_depth(self):
        ff = sop.and_node([sop.literal_node(0), sop.or_node([
            sop.literal_node(1), sop.literal_node(2)])])
        assert ff.depth() == 2

    def test_single_child_collapse(self):
        assert sop.and_node([sop.literal_node(0)]).kind == "lit"
        assert sop.or_node([sop.literal_node(1)]).kind == "lit"

    @pytest.mark.parametrize("num_vars", [2, 3, 4])
    def test_quick_factor_preserves_function(self, num_vars):
        import random

        rnd = random.Random(99)
        for _ in range(20):
            table = rnd.getrandbits(1 << num_vars)
            cover = truth.isop(table, table, num_vars)
            ff = sop.quick_factor(cover)
            assert sop.factored_form_table(ff, num_vars) == table

    @pytest.mark.parametrize("num_vars", [2, 3, 4, 5])
    def test_factor_truth_table_preserves_function(self, num_vars):
        import random

        rnd = random.Random(3)
        for _ in range(15):
            table = rnd.getrandbits(1 << num_vars)
            ff = sop.factor_truth_table(table, num_vars)
            assert sop.factored_form_table(ff, num_vars) == table & truth.table_mask(num_vars)

    def test_factoring_shares_common_literal(self):
        # f = x0 x1 + x0 x2 should factor to x0 (x1 + x2): 3 literals, not 4.
        cover = [(0b011, 0), (0b101, 0)]
        ff = sop.quick_factor(cover)
        assert ff.literal_count() == 3

    def test_constants(self):
        assert sop.factor_truth_table(0, 3) is sop.CONST0_FF
        assert sop.factor_truth_table(truth.table_mask(3), 3) is sop.CONST1_FF


class TestBuildIntoAig:
    @pytest.mark.parametrize("table", [0b1000, 0b0110, 0b1110, 0b0111])
    def test_build_matches_table(self, table):
        num_vars = 2
        ff = sop.factor_truth_table(table, num_vars)
        aig = AIG()
        leaves = [aig.add_pi() for _ in range(num_vars)]
        aig.add_po(sop.build_factored_form(aig, ff, leaves))
        assert exhaustive_output_tables(aig) == [table]

    def test_build_constants(self):
        aig = AIG()
        aig.add_pi()
        lit0 = sop.build_factored_form(aig, sop.CONST0_FF, [2])
        lit1 = sop.build_factored_form(aig, sop.CONST1_FF, [2])
        assert lit0 == 0
        assert lit1 == 1

    def test_delay_aware_build_prefers_early_leaves(self):
        aig = AIG()
        leaves = [aig.add_pi() for _ in range(4)]
        arrival = {leaves[0]: 5, leaves[1]: 0, leaves[2]: 0, leaves[3]: 0}
        ff = sop.and_node([sop.literal_node(i) for i in range(4)])
        out = sop.build_factored_form(aig, ff, leaves, arrival=arrival)
        aig.add_po(out)
        # The late leaf must sit near the root: total depth 5+... the tree
        # over the three early leaves is combined first, so overall depth
        # from the late input is exactly one AND level.
        levels = aig.levels()
        from repro.aig.graph import lit_var
        assert levels[lit_var(out)] <= 3
