"""Property-based tests for synthesis passes, mapping, SSK and the space."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aig.graph import AIG
from repro.aig.simulation import functionally_equivalent
from repro.bo.space import SequenceSpace
from repro.gp.kernels.ssk import ssk_diag, ssk_gram, subsequence_contribution
from repro.mapping import map_aig
from repro.synth.operations import apply_sequence, list_operations


@st.composite
def random_aig(draw, max_inputs=5, max_gates=16):
    num_inputs = draw(st.integers(min_value=2, max_value=max_inputs))
    num_gates = draw(st.integers(min_value=2, max_value=max_gates))
    aig = AIG(name="random")
    literals = [aig.add_pi() for _ in range(num_inputs)]
    for _ in range(num_gates):
        i = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        j = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        a = literals[i] ^ int(draw(st.booleans()))
        b = literals[j] ^ int(draw(st.booleans()))
        literals.append(aig.add_and(a, b))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        idx = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        aig.add_po(literals[idx] ^ int(draw(st.booleans())))
    return aig


OPERATION_NAMES = [op.name for op in list_operations()]


class TestSynthesisProperties:
    @given(random_aig(), st.lists(st.sampled_from(OPERATION_NAMES), min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_any_sequence_preserves_function(self, aig, sequence):
        transformed = apply_sequence(aig, sequence)
        assert functionally_equivalent(aig, transformed)
        assert transformed.num_pis == aig.num_pis
        assert transformed.num_pos == aig.num_pos

    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_balance_never_increases_depth(self, aig):
        from repro.synth.balance import balance

        assert balance(aig).depth() <= aig.depth()

    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_rewrite_never_increases_size(self, aig):
        from repro.synth.rewrite import rewrite

        assert rewrite(aig).num_ands <= aig.num_ands


class TestMappingProperties:
    @given(random_aig(), st.integers(min_value=3, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_cover_is_valid(self, aig, k):
        result = map_aig(aig, lut_size=k)
        roots = {lut.root for lut in result.luts}
        pi_set = set(aig.pis)
        from repro.aig.graph import lit_var

        for po in aig.pos:
            var = lit_var(po)
            if aig.is_and(var):
                assert var in roots
        for lut in result.luts:
            assert len(lut.leaves) <= k
            for leaf in lut.leaves:
                assert leaf == 0 or leaf in pi_set or leaf in roots
        assert result.area == len(result.luts)
        assert result.delay >= (1 if roots else 0)

    @given(random_aig())
    @settings(max_examples=15, deadline=None)
    def test_area_no_worse_than_and_count(self, aig):
        result = map_aig(aig.cleanup(), lut_size=6)
        assert result.area <= max(1, aig.cleanup().num_ands)


class TestSskProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_gram_is_symmetric_psd(self, data):
        n = data.draw(st.integers(min_value=2, max_value=6))
        length = data.draw(st.integers(min_value=3, max_value=8))
        X = np.array(data.draw(st.lists(
            st.lists(st.integers(min_value=0, max_value=10), min_size=length, max_size=length),
            min_size=n, max_size=n)))
        tm = data.draw(st.floats(min_value=0.1, max_value=1.0))
        tg = data.draw(st.floats(min_value=0.1, max_value=1.0))
        gram = ssk_gram(X, X, tm, tg, 3)
        assert np.allclose(gram, gram.T, atol=1e-9)
        assert np.linalg.eigvalsh(gram).min() > -1e-7
        assert np.allclose(np.diag(gram), ssk_diag(X, tm, tg, 3))

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_contribution_scales_with_theta_match(self, data):
        length = data.draw(st.integers(min_value=2, max_value=6))
        seq = data.draw(st.lists(st.integers(min_value=0, max_value=3),
                                 min_size=length, max_size=length))
        u = data.draw(st.lists(st.integers(min_value=0, max_value=3),
                               min_size=1, max_size=2))
        tg = data.draw(st.floats(min_value=0.1, max_value=1.0))
        low = subsequence_contribution(u, seq, 0.3, tg)
        high = subsequence_contribution(u, seq, 0.9, tg)
        assert high >= low  # higher match decay weight -> larger contribution

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_self_similarity_dominates(self, data):
        """Cauchy–Schwarz: k(x,y)^2 <= k(x,x) k(y,y)."""
        length = data.draw(st.integers(min_value=3, max_value=8))
        x = data.draw(st.lists(st.integers(min_value=0, max_value=5),
                               min_size=length, max_size=length))
        y = data.draw(st.lists(st.integers(min_value=0, max_value=5),
                               min_size=length, max_size=length))
        X = np.array([x, y])
        gram = ssk_gram(X, X, 0.8, 0.6, 3)
        assert gram[0, 1] ** 2 <= gram[0, 0] * gram[1, 1] + 1e-9


class TestSpaceProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_neighbour_distance_invariant(self, data):
        length = data.draw(st.integers(min_value=2, max_value=12))
        space = SequenceSpace(sequence_length=length)
        rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=1000)))
        base = space.sample(1, rng)[0]
        changes = data.draw(st.integers(min_value=1, max_value=length))
        neighbour = space.random_neighbour(base, rng, num_changes=changes)
        assert space.hamming_distance(base, neighbour) == changes

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_hamming_ball_membership(self, data):
        length = data.draw(st.integers(min_value=2, max_value=12))
        space = SequenceSpace(sequence_length=length)
        rng = np.random.default_rng(data.draw(st.integers(min_value=0, max_value=1000)))
        centre = space.sample(1, rng)[0]
        radius = data.draw(st.integers(min_value=0, max_value=length))
        point = space.random_point_in_hamming_ball(centre, radius, rng)
        assert space.hamming_distance(centre, point) <= radius

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_conversion_roundtrip(self, data):
        length = data.draw(st.integers(min_value=1, max_value=10))
        space = SequenceSpace(sequence_length=length)
        indices = data.draw(st.lists(st.integers(min_value=0, max_value=10),
                                     min_size=length, max_size=length))
        names = space.to_names(indices)
        assert list(space.to_indices(names)) == list(indices)
