"""Differential fuzzing of the substrate fast paths and the file IO.

~200 seeded random AIGs (mixed generator kinds, see
:mod:`repro.circuits.fuzz`) drive four differential checks:

* bitset cut enumeration is bit-identical to the frozen reference
  (:mod:`repro.aig._reference`),
* the array-backed LUT mapper is bit-identical to the frozen reference
  (:mod:`repro.mapping._reference`) — before and after synthesis passes,
* synthesis passes preserve circuit function (random-vector simulation),
* AIGER (ASCII + binary), BLIF and ``.bench`` write→read round trips are
  simulation-equivalent.

The base seed rotates in CI (``--fuzz-seed=$GITHUB_RUN_ID``); every
check carries the instance recipe in its assertion message, so a CI
failure prints exactly the ``--fuzz-seed`` plus case index that
reproduces it locally.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import pytest

from repro.aig._reference import enumerate_cuts_reference
from repro.aig.aiger import read_aiger_string, write_aiger_string
from repro.aig.bench import read_bench_string, write_bench_string
from repro.aig.blif import read_blif_string, write_blif_string
from repro.aig.cuts import enumerate_cuts
from repro.aig.graph import AIG
from repro.aig.simulation import simulate_words
from repro.circuits.fuzz import FUZZ_KINDS, FuzzSpec
from repro.mapping._reference import ReferenceLutMapper
from repro.mapping.lut_mapper import LutMapper
from repro.synth.operations import apply_sequence, list_operations

#: Number of seeded random circuits the suite sweeps.
NUM_CASES = 200

#: Re-used across the four checks of a case: building once keeps the
#: 4 x NUM_CASES parametrisation affordable.
_AIG_CACHE: Dict[Tuple[int, int], Tuple[AIG, FuzzSpec]] = {}


def _case(fuzz_seed: int, index: int) -> Tuple[AIG, FuzzSpec, str]:
    key = (fuzz_seed, index)
    if key not in _AIG_CACHE:
        rng = np.random.default_rng(np.random.SeedSequence((fuzz_seed, index)))
        spec = FuzzSpec(
            kind=FUZZ_KINDS[index % len(FUZZ_KINDS)],
            seed=int(rng.integers(0, 2 ** 31)),
            num_inputs=int(rng.integers(3, 11)),
            num_gates=int(rng.integers(10, 70)),
            num_outputs=int(rng.integers(1, 6)),
            fanin_window=int(rng.integers(4, 20)),
        )
        _AIG_CACHE[key] = (spec.build(), spec)
    aig, spec = _AIG_CACHE[key]
    blame = (f"case {index}: {spec!r} (reproduce with "
             f"--fuzz-seed={fuzz_seed})")
    return aig, spec, blame


def _outputs_on_random_vectors(aig: AIG, seed: int, num_words: int = 4):
    rng = np.random.default_rng(np.random.SeedSequence((seed, 0xC1)))
    patterns = rng.integers(0, np.iinfo(np.uint64).max,
                            size=(aig.num_pis, num_words), dtype=np.uint64,
                            endpoint=True)
    return patterns, simulate_words(aig, patterns)


@pytest.mark.parametrize("index", range(NUM_CASES))
class TestFuzzSubstrate:
    def test_cut_enumeration_matches_reference(self, fuzz_seed, index):
        aig, spec, blame = _case(fuzz_seed, index)
        kwargs = dict(k=4 + index % 3, max_cuts=4 + index % 5,
                      include_trivial=bool(index % 2))
        if index % 3 == 0:
            kwargs["depths"] = aig.levels()
        assert enumerate_cuts(aig, **kwargs) == \
            enumerate_cuts_reference(aig, **kwargs), blame

    def test_lut_mapping_matches_reference(self, fuzz_seed, index):
        aig, spec, blame = _case(fuzz_seed, index)
        lut_size = 4 + 2 * (index % 2)  # 4 or 6
        ours = LutMapper(lut_size=lut_size).map(aig)
        reference = ReferenceLutMapper(lut_size=lut_size).map(aig)
        assert (ours.area, ours.delay) == (reference.area, reference.delay), blame
        assert ours.luts == reference.luts, blame

    def test_synth_passes_preserve_function_and_mapping_identity(
            self, fuzz_seed, index):
        aig, spec, blame = _case(fuzz_seed, index)
        operations = [op.name for op in list_operations()]
        rng = np.random.default_rng(
            np.random.SeedSequence((fuzz_seed, index, 0x5E)))
        sequence = [operations[int(rng.integers(0, len(operations)))]
                    for _ in range(3)]
        optimised = apply_sequence(aig, sequence)
        # Function preserved under the pass pipeline...
        patterns, expected = _outputs_on_random_vectors(aig, spec.seed)
        assert np.array_equal(simulate_words(optimised, patterns),
                              expected), (blame, sequence)
        # ...and the optimised graph still maps bit-identically.
        ours = LutMapper(lut_size=4).map(optimised)
        reference = ReferenceLutMapper(lut_size=4).map(optimised)
        assert (ours.area, ours.delay, ours.luts) == \
            (reference.area, reference.delay, reference.luts), (blame, sequence)

    def test_file_roundtrips_simulation_equivalent(self, fuzz_seed, index):
        aig, spec, blame = _case(fuzz_seed, index)
        patterns, expected = _outputs_on_random_vectors(aig, spec.seed)
        roundtrips = {
            "aag": lambda: read_aiger_string(write_aiger_string(aig, binary=False)),
            "aig": lambda: read_aiger_string(write_aiger_string(aig, binary=True)),
            "blif": lambda: read_blif_string(write_blif_string(aig)),
            "bench": lambda: read_bench_string(write_bench_string(aig)),
        }
        for format_key, roundtrip in roundtrips.items():
            parsed = roundtrip()
            assert parsed.num_pis == aig.num_pis, (blame, format_key)
            assert parsed.num_pos == aig.num_pos, (blame, format_key)
            assert np.array_equal(simulate_words(parsed, patterns),
                                  expected), (blame, format_key)
