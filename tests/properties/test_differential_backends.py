"""Differential backend validation over the fuzz corpus.

The differential extension of the fuzz harness (PR 5) for the backend
layer: on ≥50 seeded random circuits, measurements recorded to a replay
tape must replay bit-identically against the native substrate
(:func:`repro.qor.backends.differential.cross_check`), and a tampered
tape must be caught.  When a real ``abc`` binary is installed the same
sweep cross-checks native against the external oracle; without one the
external job is skipped with a notice (CI prints it).

The base seed rotates in CI (``--fuzz-seed=$GITHUB_RUN_ID``); every
failure message carries the recipe that reproduces it locally.
"""

from __future__ import annotations

import json
import shutil
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.aig.graph import AIG
from repro.circuits.fuzz import FUZZ_KINDS, FuzzSpec
from repro.qor.backends import (
    BackendError,
    ExternalABCBackend,
    NativeBackend,
    ReplayBackend,
    assert_equivalent,
    cross_check,
)
from repro.synth.operations import list_operations

#: Number of seeded random circuits the differential sweep covers
#: (the acceptance floor is 50).
NUM_CASES = 60

#: Sequences measured per circuit (distinct short op sequences).
SEQUENCES_PER_CASE = 3

_AIG_CACHE: Dict[Tuple[int, int], Tuple[AIG, FuzzSpec]] = {}


def _case(fuzz_seed: int, index: int) -> Tuple[AIG, FuzzSpec, str]:
    key = (fuzz_seed, index)
    if key not in _AIG_CACHE:
        rng = np.random.default_rng(
            np.random.SeedSequence((fuzz_seed, 0xD1FF, index)))
        spec = FuzzSpec(
            kind=FUZZ_KINDS[index % len(FUZZ_KINDS)],
            seed=int(rng.integers(0, 2 ** 31)),
            num_inputs=int(rng.integers(3, 9)),
            num_gates=int(rng.integers(10, 50)),
            num_outputs=int(rng.integers(1, 5)),
            fanin_window=int(rng.integers(4, 16)),
        )
        _AIG_CACHE[key] = (spec.build(), spec)
    aig, spec = _AIG_CACHE[key]
    blame = (f"case {index}: {spec!r} (reproduce with "
             f"--fuzz-seed={fuzz_seed})")
    return aig, spec, blame


def _sequences(fuzz_seed: int, index: int) -> List[Tuple[str, ...]]:
    """Short seeded op sequences, the empty sequence always included."""
    operations = list_operations()
    rng = np.random.default_rng(
        np.random.SeedSequence((fuzz_seed, 0x5E0, index)))
    sequences: List[Tuple[str, ...]] = [()]
    for _ in range(SEQUENCES_PER_CASE - 1):
        length = int(rng.integers(1, 4))
        sequences.append(tuple(
            operations[int(i)].name
            for i in rng.integers(0, len(operations), size=length)))
    return sequences


@pytest.mark.parametrize("index", range(NUM_CASES))
def test_native_vs_replay_differential(fuzz_seed, index, tmp_path):
    """Record on native, replay hermetically: zero mismatches allowed."""
    aig, _spec, blame = _case(fuzz_seed, index)
    sequences = _sequences(fuzz_seed, index)
    tape = tmp_path / "tape.json"

    recorder = ReplayBackend(tape=str(tape), mode="record")
    for sequence in sequences:
        recorder.measure(aig, sequence, 6)

    mismatches = cross_check(
        NativeBackend(), ReplayBackend(tape=str(tape)), aig, sequences)
    assert not mismatches, (
        f"{blame}: replay disagrees with native: "
        + "; ".join(str(m) for m in mismatches))


def test_tampered_tape_is_caught(fuzz_seed, tmp_path):
    """The differential mode must actually detect a corrupted tape."""
    aig, _spec, blame = _case(fuzz_seed, 0)
    sequences = _sequences(fuzz_seed, 0)
    tape = tmp_path / "tape.json"
    recorder = ReplayBackend(tape=str(tape), mode="record")
    for sequence in sequences:
        recorder.measure(aig, sequence, 6)

    payload = json.loads(tape.read_text())
    for circuit in payload["circuits"].values():
        for entry in circuit["entries"].values():
            entry[0] += 1  # off-by-one area on every recorded row
    tape.write_text(json.dumps(payload))

    mismatches = cross_check(
        NativeBackend(), ReplayBackend(tape=str(tape)), aig, sequences)
    assert len(mismatches) == len(sequences), blame
    with pytest.raises(BackendError, match="disagree"):
        assert_equivalent(
            NativeBackend(), ReplayBackend(tape=str(tape)), aig, sequences)


@pytest.mark.skipif(shutil.which("abc") is None,
                    reason="external 'abc' binary not installed; "
                           "native-vs-ABC differential sweep skipped")
@pytest.mark.parametrize("index", range(0, NUM_CASES, 10))
def test_native_vs_external_abc_smoke(fuzz_seed, index):
    """With a real ABC installed, the external adapter must measure.

    Native and real ABC are *expected* to disagree on absolute numbers
    (different rewrite engines); the differential signal here is that
    the adapter parses real stats into sane positive pairs for every
    sequence, and the report machinery carries any disagreement.
    """
    aig, _spec, blame = _case(fuzz_seed, index)
    sequences = _sequences(fuzz_seed, index)
    backend = ExternalABCBackend()
    for sequence in sequences:
        area, delay = backend.measure(aig, sequence, 6)
        assert area >= 0 and delay >= 0, blame
    cross_check(NativeBackend(), backend, aig, sequences)  # must not raise
