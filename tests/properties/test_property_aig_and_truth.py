"""Property-based tests (hypothesis) on the AIG and truth-table layers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.aig import truth
from repro.aig.aiger import read_aiger_string, write_aiger_string
from repro.aig.graph import AIG, lit_not, lit_var
from repro.aig.simulation import exhaustive_output_tables, functionally_equivalent, simulate


# ----------------------------------------------------------------------
# Random-AIG strategy: build a small random combinational AIG from a
# recipe of (operation, operand indices) tuples.
# ----------------------------------------------------------------------
@st.composite
def random_aig(draw, max_inputs=5, max_gates=20):
    num_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    aig = AIG(name="random")
    literals = [aig.add_pi() for _ in range(num_inputs)]
    for _ in range(num_gates):
        i = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        j = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        comp_i = draw(st.booleans())
        comp_j = draw(st.booleans())
        a = literals[i] ^ int(comp_i)
        b = literals[j] ^ int(comp_j)
        literals.append(aig.add_and(a, b))
    num_outputs = draw(st.integers(min_value=1, max_value=min(4, len(literals))))
    for k in range(num_outputs):
        idx = draw(st.integers(min_value=0, max_value=len(literals) - 1))
        aig.add_po(literals[idx] ^ int(draw(st.booleans())))
    return aig


class TestAigProperties:
    @given(random_aig())
    @settings(max_examples=40, deadline=None)
    def test_copy_is_equivalent_and_no_larger(self, aig):
        copy = aig.copy()
        assert functionally_equivalent(aig, copy)
        assert copy.num_ands <= aig.num_ands

    @given(random_aig())
    @settings(max_examples=40, deadline=None)
    def test_aiger_roundtrip(self, aig):
        parsed = read_aiger_string(write_aiger_string(aig))
        assert functionally_equivalent(aig, parsed)

    @given(random_aig())
    @settings(max_examples=30, deadline=None)
    def test_levels_are_consistent(self, aig):
        levels = aig.levels()
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node.var)
            assert levels[node.var] == 1 + max(levels[lit_var(f0)], levels[lit_var(f1)])

    @given(random_aig(), st.integers(min_value=0, max_value=2 ** 5 - 1))
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_truth_table(self, aig, pattern):
        tables = exhaustive_output_tables(aig)
        bits = [(pattern >> i) & 1 for i in range(aig.num_pis)]
        minterm = sum(bit << i for i, bit in enumerate(bits))
        outputs = simulate(aig, bits)
        for out_value, table in zip(outputs, tables):
            assert out_value == (table >> minterm) & 1


class TestTruthProperties:
    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=60, deadline=None)
    def test_isop_covers_exactly(self, num_vars, data):
        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        cover = truth.isop(table, table, num_vars)
        assert truth.sop_table(cover, num_vars) == table

    @given(st.integers(min_value=2, max_value=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_npn_key_invariant_under_transforms(self, num_vars, data):
        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        key = truth.npn_class_key(table, num_vars)
        # Output complement.
        assert truth.npn_class_key(truth.tt_not(table, num_vars), num_vars) == key
        # Any input flip.
        var = data.draw(st.integers(min_value=0, max_value=num_vars - 1))
        assert truth.npn_class_key(truth.flip_input(table, num_vars, var), num_vars) == key

    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_shannon_expansion(self, num_vars, data):
        """f = (x & f_x) | (~x & f_~x) for every variable."""
        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        for var in range(num_vars):
            pos = truth.cofactor(table, num_vars, var, 1)
            neg = truth.cofactor(table, num_vars, var, 0)
            x = truth.var_table(var, num_vars)
            rebuilt = (x & pos) | (truth.tt_not(x, num_vars) & neg)
            assert rebuilt == table

    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_support_matches_dependence(self, num_vars, data):
        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        support = truth.support(table, num_vars)
        for var in range(num_vars):
            assert (var in support) == truth.depends_on(table, num_vars, var)


class TestFactoringProperties:
    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=50, deadline=None)
    def test_factored_form_equals_table(self, num_vars, data):
        from repro.synth import sop

        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        ff = sop.factor_truth_table(table, num_vars)
        assert sop.factored_form_table(ff, num_vars) == table

    @given(st.integers(min_value=2, max_value=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_factored_form_builds_correct_aig(self, num_vars, data):
        from repro.synth import sop

        table = data.draw(st.integers(min_value=0, max_value=truth.table_mask(num_vars)))
        ff = sop.factor_truth_table(table, num_vars)
        aig = AIG()
        leaves = [aig.add_pi() for _ in range(num_vars)]
        aig.add_po(sop.build_factored_form(aig, ff, leaves))
        assert exhaustive_output_tables(aig) == [table]
