"""End-to-end integration tests across all layers.

These tests exercise the complete pipeline — circuit generation →
synthesis sequence → LUT mapping → QoR → optimisation → experiment
aggregation — at a tiny scale, verifying that every layer composes and
that the headline qualitative claims hold in-sample (BOiLS finds a
sequence at least as good as random search given the same small budget on
a fixed seed grid; the Pareto machinery classifies its own inputs
consistently).
"""

import numpy as np
import pytest

from repro import OPERATION_ALPHABET, QoREvaluator, apply_sequence, get_circuit, resyn2
from repro.aig.simulation import functionally_equivalent
from repro.bo import BOiLS, SequenceSpace
from repro.baselines import RandomSearch
from repro.experiments import (
    ExperimentConfig,
    build_qor_table,
    run_experiment,
)
from repro.experiments.convergence import build_convergence_curves
from repro.experiments.pareto import build_pareto_study
from repro.mapping import map_aig


class TestPipeline:
    def test_full_flow_on_one_circuit(self):
        aig = get_circuit("sqrt", width=6)
        evaluator = QoREvaluator(aig)
        sequence = ["balance", "rewrite", "refactor", "fraig"]
        record = evaluator.evaluate(sequence)
        optimised = apply_sequence(aig, sequence)
        assert functionally_equivalent(aig, optimised)
        mapping = map_aig(optimised)
        assert mapping.area == record.area
        assert mapping.delay == record.delay

    def test_alphabet_is_the_paper_alphabet(self):
        assert len(OPERATION_ALPHABET) == 11

    def test_resyn2_reference_consistency(self):
        aig = get_circuit("adder", width=6)
        evaluator = QoREvaluator(aig)
        reference = map_aig(resyn2(aig))
        assert evaluator.reference_area == max(1, reference.area)
        assert evaluator.reference_delay == max(1, reference.delay)


class TestOptimiserIntegration:
    def test_boils_vs_random_on_fixed_budget(self):
        """BOiLS should not lose to RS when both get the same small budget
        and share the evaluation cache (same circuit, fixed seeds)."""
        aig = get_circuit("adder", width=6)
        space = SequenceSpace(sequence_length=6)
        budget = 16
        boils_scores, rs_scores = [], []
        for seed in range(2):
            evaluator = QoREvaluator(aig)
            boils = BOiLS(space=space, seed=seed, num_initial=6,
                          local_search_queries=80, adam_steps=2, fit_every=2)
            boils_scores.append(boils.optimise(evaluator, budget).best_improvement)
            evaluator = QoREvaluator(aig)
            rs = RandomSearch(space=space, seed=seed)
            rs_scores.append(rs.optimise(evaluator, budget).best_improvement)
        assert np.mean(boils_scores) >= np.mean(rs_scores) - 1.0

    def test_experiment_grid_and_all_aggregations(self):
        config = ExperimentConfig(
            budget=6, num_seeds=1, sequence_length=4,
            circuits=("adder",), methods=("boils", "rs"),
            method_overrides={"boils": {"num_initial": 3, "local_search_queries": 30,
                                        "adam_steps": 1}},
        )
        results = run_experiment(config)
        assert len(results) == 2

        table = build_qor_table(results)
        assert set(table.methods) == {"BOiLS", "RS"}

        curves = build_convergence_curves(results)
        for method in ("BOiLS", "RS"):
            curve = curves.curve("adder", method)
            assert len(curve) == 6
            assert curve[-1] == pytest.approx(table.value("adder", method))

        study = build_pareto_study(results)
        percentages = study.on_front_percentages()
        assert set(percentages) == {"BOiLS", "RS"}
        # Every front point comes from one of the methods, so at least one
        # method has a solution on the front.
        assert max(percentages.values()) > 0


class TestDeterminism:
    def test_whole_pipeline_is_deterministic(self):
        config = ExperimentConfig(
            budget=5, num_seeds=1, sequence_length=4,
            circuits=("sqrt",), methods=("rs", "greedy"),
        )
        first = run_experiment(config)
        second = run_experiment(config)
        for a, b in zip(first, second):
            assert a.history == b.history
            assert a.best_sequence == b.best_sequence
