"""Functional-correctness tests for the benchmark circuit generators.

Each generated circuit is simulated against the arithmetic function it is
supposed to implement (Python integer arithmetic is the reference model).
"""

import math

import numpy as np
import pytest

from repro.aig.simulation import simulate
from repro.circuits import (
    make_adder,
    make_barrel_shifter,
    make_divisor,
    make_hypotenuse,
    make_log2,
    make_max,
    make_multiplier,
    make_sine,
    make_square,
    make_square_root,
)


def to_bits(value: int, width: int):
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits):
    return sum(bit << i for i, bit in enumerate(bits))


class TestAdder:
    def test_exhaustive_3bit(self):
        aig = make_adder(3)
        for a in range(8):
            for b in range(8):
                out = simulate(aig, to_bits(a, 3) + to_bits(b, 3))
                assert from_bits(out) == a + b

    def test_interface(self):
        aig = make_adder(8)
        assert aig.num_pis == 16
        assert aig.num_pos == 9


class TestBarrelShifter:
    def test_rotation_samples(self, rng):
        width = 8
        aig = make_barrel_shifter(width)
        shift_bits = aig.num_pis - width
        for _ in range(30):
            data = int(rng.integers(0, 1 << width))
            shift = int(rng.integers(0, 1 << shift_bits))
            out = simulate(aig, to_bits(data, width) + to_bits(shift, shift_bits))
            rotation = shift % width
            expected = ((data << rotation) | (data >> (width - rotation))) & ((1 << width) - 1)
            assert from_bits(out) == expected

    def test_rejects_width_one(self):
        with pytest.raises(ValueError):
            make_barrel_shifter(1)


class TestDivisor:
    def test_division_samples(self, rng):
        width = 5
        aig = make_divisor(width)
        for _ in range(40):
            n = int(rng.integers(0, 1 << width))
            d = int(rng.integers(1, 1 << width))
            out = simulate(aig, to_bits(n, width) + to_bits(d, width))
            quotient = from_bits(out[:width])
            remainder = from_bits(out[width:])
            assert quotient == n // d
            assert remainder == n % d

    def test_exhaustive_3bit(self):
        aig = make_divisor(3)
        for n in range(8):
            for d in range(1, 8):
                out = simulate(aig, to_bits(n, 3) + to_bits(d, 3))
                assert from_bits(out[:3]) == n // d
                assert from_bits(out[3:]) == n % d


class TestHypotenuse:
    def test_hypotenuse_samples(self, rng):
        width = 4
        aig = make_hypotenuse(width)
        for _ in range(25):
            a = int(rng.integers(0, 1 << width))
            b = int(rng.integers(0, 1 << width))
            out = simulate(aig, to_bits(a, width) + to_bits(b, width))
            assert from_bits(out) == math.isqrt(a * a + b * b)


class TestLog2:
    def test_integer_part_is_msb_index(self, rng):
        width = 8
        aig = make_log2(width)
        int_bits = max(1, (width - 1).bit_length())
        for _ in range(30):
            x = int(rng.integers(1, 1 << width))
            out = simulate(aig, to_bits(x, width))
            integer_part = from_bits(out[:int_bits])
            assert integer_part == int(math.floor(math.log2(x)))

    def test_valid_flag(self):
        width = 6
        aig = make_log2(width)
        out_zero = simulate(aig, to_bits(0, width))
        assert out_zero[-1] == 0  # "valid" is the last PO
        out_nonzero = simulate(aig, to_bits(5, width))
        assert out_nonzero[-1] == 1


class TestMax:
    def test_max_of_four(self, rng):
        width = 6
        aig = make_max(width, num_words=4)
        for _ in range(30):
            words = [int(rng.integers(0, 1 << width)) for _ in range(4)]
            bits = []
            for word in words:
                bits.extend(to_bits(word, width))
            out = simulate(aig, bits)
            assert from_bits(out) == max(words)

    def test_max_of_two_exhaustive(self):
        aig = make_max(3, num_words=2)
        for a in range(8):
            for b in range(8):
                out = simulate(aig, to_bits(a, 3) + to_bits(b, 3))
                assert from_bits(out) == max(a, b)


class TestMultiplierAndSquare:
    def test_multiplier_exhaustive_3bit(self):
        aig = make_multiplier(3)
        for a in range(8):
            for b in range(8):
                out = simulate(aig, to_bits(a, 3) + to_bits(b, 3))
                assert from_bits(out) == a * b

    def test_square_samples(self, rng):
        width = 5
        aig = make_square(width)
        for x in range(1 << width):
            out = simulate(aig, to_bits(x, width))
            assert from_bits(out) == x * x


class TestSquareRoot:
    def test_sqrt_exhaustive_6bit(self):
        aig = make_square_root(6)
        for x in range(64):
            out = simulate(aig, to_bits(x, 6))
            assert from_bits(out) == math.isqrt(x)

    def test_sqrt_odd_width(self):
        aig = make_square_root(5)
        for x in range(32):
            out = simulate(aig, to_bits(x, 5))
            assert from_bits(out) == math.isqrt(x)


class TestSine:
    def test_sine_tracks_reference(self):
        """CORDIC output should approximate sin() over the first quadrant."""
        width = 8
        aig = make_sine(width, iterations=8)
        gain = 0.607252935 * (1 << width) * 1.6468
        for x in (0, 10, 60, 120, 200, 250, 255):
            out = simulate(aig, to_bits(x, width))
            expected = math.sin(x / (1 << width) * math.pi / 2) * gain
            assert abs(from_bits(out) - expected) <= 6

    def test_sine_is_monotone_on_first_quadrant_samples(self):
        width = 8
        aig = make_sine(width, iterations=8)
        values = [from_bits(simulate(aig, to_bits(x, width)))
                  for x in (10, 60, 120, 200, 250)]
        assert all(b >= a - 2 for a, b in zip(values, values[1:]))

    def test_sine_structure_nontrivial(self):
        aig = make_sine(8)
        assert aig.num_ands > 100
