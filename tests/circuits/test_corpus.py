"""Tests of the corpus subsystem and file-backed circuit specs."""

import json
import shutil

import pytest

from repro.aig.aiger import write_aiger
from repro.aig.blif import write_blif
from repro.api import Campaign, Problem, resume_campaign, run_campaign
from repro.circuits import make_adder, make_multiplier
from repro.circuits.corpus import (
    CorpusError,
    CorpusManifest,
    build_corpus,
    corpus_problems,
    import_circuit,
)
from repro.circuits.files import (
    CircuitFileError,
    FileCircuitSpec,
    file_circuit_spec,
    is_file_circuit_name,
    load_circuit_file,
)
from repro.circuits.registry import get_circuit, get_circuit_spec, resolve_width
from repro.engine.spec import EvaluatorSpec


class TestFileCircuitSpec:
    def test_name_forms(self, tmp_path):
        path = tmp_path / "c.aag"
        write_aiger(make_adder(3), path)
        assert is_file_circuit_name(f"file:{path}")
        assert is_file_circuit_name(str(path))
        assert not is_file_circuit_name("adder")
        for name in (f"file:{path}", str(path)):
            spec = get_circuit_spec(name)
            assert isinstance(spec, FileCircuitSpec)
            assert spec.file_backed
            assert spec.format == "aiger-ascii"

    def test_get_circuit_loads_file(self, tmp_path):
        path = tmp_path / "mult.blif"
        write_blif(make_multiplier(3), path)
        aig = get_circuit(f"file:{path}")
        assert aig.stats() == make_multiplier(3).cleanup().stats()

    def test_width_is_pinned_to_zero(self, tmp_path):
        path = tmp_path / "c.aag"
        write_aiger(make_adder(3), path)
        assert resolve_width(f"file:{path}") == 0
        assert resolve_width(f"file:{path}", 16) == 0

    def test_slug_is_relocation_stable(self, tmp_path):
        path_a = tmp_path / "a" / "circuit.aag"
        path_b = tmp_path / "b" / "renamed-dir" / "circuit.aag"
        path_a.parent.mkdir()
        path_b.parent.mkdir(parents=True)
        write_aiger(make_adder(3), path_a)
        shutil.copyfile(path_a, path_b)
        assert (file_circuit_spec(str(path_a)).slug
                == file_circuit_spec(str(path_b)).slug)

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(CircuitFileError, match="does not exist"):
            get_circuit_spec(f"file:{tmp_path}/nope.aag")

    def test_unknown_suffix_errors(self, tmp_path):
        path = tmp_path / "c.xyz"
        path.write_text("junk")
        with pytest.raises(CircuitFileError, match="suffix"):
            load_circuit_file(path)

    def test_hash_verification(self, tmp_path):
        path = tmp_path / "c.aag"
        write_aiger(make_adder(3), path)
        spec = file_circuit_spec(str(path))
        load_circuit_file(path, expected_hash=spec.content_hash)  # fine
        with pytest.raises(CircuitFileError, match="changed on disk"):
            load_circuit_file(path, expected_hash="0" * 64)


class TestEvaluatorSpecTransport:
    def test_path_and_hash_travel_and_key_is_content_based(self, tmp_path):
        path = tmp_path / "c.aag"
        write_aiger(make_adder(3), path)
        spec = EvaluatorSpec.for_circuit(f"file:{path}")
        assert spec.width == 0
        assert spec.circuit_file == str(path.resolve())
        assert spec.circuit_hash
        assert EvaluatorSpec.from_payload(spec.to_payload()) == spec
        evaluator = spec.build_evaluator()
        assert evaluator.cache_key == f"sha256:{spec.circuit_hash}:lut6"

    def test_cache_key_stable_across_relocation(self, tmp_path):
        original = tmp_path / "original" / "c.aag"
        moved = tmp_path / "moved-elsewhere" / "c.aag"
        original.parent.mkdir()
        moved.parent.mkdir()
        write_aiger(make_adder(3), original)
        shutil.copyfile(original, moved)
        key_a = EvaluatorSpec.for_circuit(f"file:{original}").build_evaluator().cache_key
        key_b = EvaluatorSpec.for_circuit(f"file:{moved}").build_evaluator().cache_key
        assert key_a == key_b

    def test_worker_rejects_changed_file(self, tmp_path):
        path = tmp_path / "c.aag"
        write_aiger(make_adder(3), path)
        spec = EvaluatorSpec.for_circuit(f"file:{path}")
        write_aiger(make_adder(4), path)
        with pytest.raises(CircuitFileError, match="changed on disk"):
            spec.build_evaluator()


class TestCorpusBuild:
    def test_build_is_deterministic(self, tmp_path):
        first = build_corpus(tmp_path / "a", count=5, seed=11)
        second = build_corpus(tmp_path / "b", count=5, seed=11)
        for entry_a, entry_b in zip(first.entries, second.entries):
            assert entry_a.sha256 == entry_b.sha256
            assert entry_a.stats == entry_b.stats
        different = build_corpus(tmp_path / "c", count=5, seed=12)
        assert [e.sha256 for e in different.entries] != \
            [e.sha256 for e in first.entries]

    def test_build_mixes_kinds_and_formats(self, tmp_path):
        manifest = build_corpus(tmp_path / "corpus", count=6, seed=0)
        kinds = {entry.source["kind"] for entry in manifest.entries}
        formats = {entry.format for entry in manifest.entries}
        assert kinds == {"layered", "windowed", "arith"}
        assert formats == {"aiger-ascii", "blif", "bench"}
        # Every file parses and matches its recorded stats and hash.
        for entry in manifest.entries:
            manifest.verify_entry(entry)
            aig = load_circuit_file(manifest.entry_path(entry))
            assert aig.stats() == entry.stats, entry.name

    def test_build_appends_to_existing_corpus(self, tmp_path):
        build_corpus(tmp_path / "corpus", count=3, seed=0)
        manifest = build_corpus(tmp_path / "corpus", count=3, seed=1)
        assert len(manifest.entries) == 6
        assert len({entry.name for entry in manifest.entries}) == 6

    def test_manifest_round_trip(self, tmp_path):
        built = build_corpus(tmp_path / "corpus", count=3, seed=5)
        loaded = CorpusManifest.load(tmp_path / "corpus")
        assert [e.to_dict() for e in loaded.entries] == \
            [e.to_dict() for e in built.entries]

    def test_not_a_corpus_errors(self, tmp_path):
        with pytest.raises(CorpusError, match="not a corpus directory"):
            CorpusManifest.load(tmp_path)

    def test_corrupt_manifest_is_never_silently_replaced(self, tmp_path):
        """A torn/malformed corpus.json must fail, not orphan entries."""
        build_corpus(tmp_path / "corpus", count=3, seed=0)
        manifest_path = tmp_path / "corpus" / "corpus.json"
        manifest_path.write_text('{"format_version": 1, "entries": [tor')
        with pytest.raises(CorpusError, match="malformed"):
            build_corpus(tmp_path / "corpus", count=1, seed=1)
        healthy = tmp_path / "healthy.aag"
        write_aiger(make_adder(3), healthy)
        with pytest.raises(CorpusError, match="malformed"):
            import_circuit(tmp_path / "corpus", healthy)
        # The corrupt file is still there for forensics — untouched.
        assert manifest_path.read_text().endswith("[tor")

    def test_bad_kind_and_format_rejected(self, tmp_path):
        with pytest.raises(CorpusError, match="unknown generator kind"):
            build_corpus(tmp_path / "x", count=1, kinds=("volcanic",))
        with pytest.raises(CorpusError, match="unknown circuit format"):
            build_corpus(tmp_path / "x", count=1, formats=("pdf",))


class TestImport:
    def test_import_validates_and_copies(self, tmp_path):
        source = tmp_path / "ext" / "my adder.aag"
        source.parent.mkdir()
        write_aiger(make_adder(3), source)
        entry = import_circuit(tmp_path / "corpus", source)
        assert entry.name == "my-adder"  # slugified
        assert entry.source["kind"] == "imported"
        manifest = CorpusManifest.load(tmp_path / "corpus")
        manifest.verify_entry(manifest.entry("my-adder"))

    def test_import_rejects_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.aag"
        bad.write_text("aag 1 1 0 1\n")
        with pytest.raises(CircuitFileError):
            import_circuit(tmp_path / "corpus", bad)
        assert not (tmp_path / "corpus" / "bad.aag").exists()

    def test_import_never_clobbers_untracked_files(self, tmp_path):
        """A hand-placed file inside the corpus dir must survive imports."""
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        stray = corpus / "adder.aag"
        write_aiger(make_adder(5), stray)
        stray_bytes = stray.read_bytes()

        external = tmp_path / "adder.aag"
        write_aiger(make_adder(3), external)
        entry = import_circuit(corpus, external)
        assert entry.name == "adder-2"  # renamed around the stray file
        assert stray.read_bytes() == stray_bytes  # untouched

    def test_import_in_place_file_is_adopted_not_renamed(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        resident = corpus / "resident.aag"
        write_aiger(make_adder(3), resident)
        entry = import_circuit(corpus, resident)
        assert entry.name == "resident"
        assert entry.file == "resident.aag"

    def test_import_dedupes_names(self, tmp_path):
        a = tmp_path / "a" / "c.aag"
        b = tmp_path / "b" / "c.aag"
        a.parent.mkdir()
        b.parent.mkdir()
        write_aiger(make_adder(3), a)
        write_aiger(make_adder(4), b)
        import_circuit(tmp_path / "corpus", a)
        entry = import_circuit(tmp_path / "corpus", b)
        assert entry.name == "c-2"


class TestCorpusCampaigns:
    def test_corpus_problems_and_verification(self, tmp_path):
        manifest = build_corpus(tmp_path / "corpus", count=4, seed=2)
        problems = corpus_problems(tmp_path / "corpus", sequence_length=3)
        assert [p.name for p in problems] == [e.name for e in manifest.entries]
        # Tampering with a file is caught at expansion time.
        victim = manifest.entries[0]
        write_aiger(make_adder(3), manifest.entry_path(victim))
        with pytest.raises(CorpusError, match="changed on disk"):
            corpus_problems(tmp_path / "corpus")

    def test_mixed_corpus_campaign_jobs2_kill_resume(self, tmp_path):
        """The acceptance scenario: mixed generated+imported corpus, a
        campaign over it under ``jobs=2``, kill + resume bit-identical."""
        build_corpus(tmp_path / "corpus", count=3, seed=4,
                     num_gates=(20, 40))
        external = tmp_path / "epfl-like.bench"
        from repro.aig.bench import write_bench
        write_bench(make_multiplier(3), external)
        import_circuit(tmp_path / "corpus", external)

        campaign = Campaign.from_corpus(
            tmp_path / "corpus", methods=("rs",), budget=6,
            sequence_length=3, name="corpus-acceptance")
        assert len(campaign.problems) == 4
        uninterrupted = run_campaign(campaign, tmp_path / "full", jobs=2)
        assert all(record.status == "ok" for record in uninterrupted)

        class _Kill(KeyboardInterrupt):
            pass

        def killer(cell_id, event):
            if (event["kind"] == "round_completed"
                    and event["round_index"] == 1
                    and cell_id == uninterrupted[0].cell_id):
                raise _Kill()

        from repro.api import CampaignStore
        killed = CampaignStore(tmp_path / "killed")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, killed, jobs=2, on_event=killer)
        resumed = resume_campaign(killed, jobs=2)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in uninterrupted]

    def test_manifest_pins_hash_and_survives_reload(self, tmp_path):
        build_corpus(tmp_path / "corpus", count=2, seed=9)
        campaign = Campaign.from_corpus(tmp_path / "corpus", methods=("rs",),
                                        budget=4, sequence_length=3)
        resolved = campaign.validate().resolved()
        for problem in resolved.problems:
            assert problem.circuit_hash
        reloaded = Campaign.from_dict(
            json.loads(json.dumps(resolved.to_dict())))
        assert [p.circuit_hash for p in reloaded.problems] == \
            [p.circuit_hash for p in resolved.problems]

    def test_key_and_show_survive_deleted_circuit_file(self, tmp_path, capsys):
        """Inspecting a store must keep working after its circuit file
        vanished: the pinned hash makes Problem.key filesystem-free."""
        from repro.cli import main

        circuit_file = tmp_path / "mine.aag"
        write_aiger(make_adder(4), circuit_file)
        problem = Problem(f"file:{circuit_file}", sequence_length=3)
        campaign = Campaign(problems=(problem,), methods=("rs",), seeds=(0,),
                            budget=4, name="doomed-file")
        store = tmp_path / "run"
        records = run_campaign(campaign, store)
        assert records[0].status == "ok"

        circuit_file.unlink()
        assert main(["show", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "unavailable" in out  # stats degrade gracefully
        assert "1/1 complete" in out

        # An *edited* file must not have its stats presented (or cached)
        # as if they were the run's circuit.
        write_aiger(make_adder(6), circuit_file)
        assert main(["show", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "changed on disk" in out
        import json as json_module
        cache = json_module.loads(
            (store / "circuit_stats.json").read_text()
            if (store / "circuit_stats.json").exists() else "{}")
        assert cache == {}  # wrong stats were never cached

    def test_subset_selection(self, tmp_path):
        manifest = build_corpus(tmp_path / "corpus", count=4, seed=1)
        names = [manifest.entries[2].name, manifest.entries[0].name]
        problems = corpus_problems(tmp_path / "corpus", names=names)
        assert [p.name for p in problems] == names
        with pytest.raises(CorpusError, match="no entry"):
            corpus_problems(tmp_path / "corpus", names=["ghost"])
