"""Tests for the circuit registry and the building blocks."""

import pytest

from repro.aig.simulation import simulate
from repro.circuits import (
    CIRCUIT_NAMES,
    LARGE_CIRCUITS,
    get_circuit,
    get_circuit_spec,
    list_circuits,
)
from repro.circuits.blocks import (
    constant_vector,
    ripple_borrow_subtractor,
    ripple_carry_adder,
    comparator_greater_equal,
    zero_extend,
    shift_left_const,
    shift_right_const,
)
from repro.aig.graph import AIG


class TestRegistry:
    def test_ten_circuits(self):
        assert len(CIRCUIT_NAMES) == 10
        assert set(LARGE_CIRCUITS) <= set(CIRCUIT_NAMES)
        assert len(LARGE_CIRCUITS) == 4

    def test_canonical_order_matches_paper_rows(self):
        assert CIRCUIT_NAMES == [
            "adder", "bar", "div", "hyp", "log2", "max",
            "multiplier", "sin", "sqrt", "square",
        ]

    def test_display_names(self):
        assert get_circuit_spec("adder").display_name == "Adder"
        assert get_circuit_spec("bar").display_name == "Barrel Shifter"
        assert get_circuit_spec("sqrt").display_name == "Square-root"

    def test_aliases(self):
        assert get_circuit_spec("Divisor").name == "div"
        assert get_circuit_spec("Hypotenuse").name == "hyp"
        assert get_circuit_spec("Sine").name == "sin"
        assert get_circuit_spec("square root").name == "sqrt"

    def test_unknown_circuit(self):
        with pytest.raises(KeyError):
            get_circuit_spec("cpu")

    def test_list_circuits_returns_specs(self):
        specs = list_circuits()
        assert len(specs) == 10
        assert all(spec.paper_width >= spec.default_width for spec in specs)

    def test_get_circuit_with_width(self):
        aig = get_circuit("adder", width=4)
        assert aig.num_pis == 8

    def test_get_circuit_default_width(self):
        aig = get_circuit("multiplier")
        assert aig.num_ands > 0

    def test_width_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIDTH_SCALE", "0.5")
        small = get_circuit("adder")
        monkeypatch.setenv("REPRO_WIDTH_SCALE", "1.0")
        normal = get_circuit("adder")
        assert small.num_pis < normal.num_pis


class TestBlocks:
    def _bits(self, value, width):
        return [(value >> i) & 1 for i in range(width)]

    def test_constant_vector(self):
        assert constant_vector(5, 4) == [1, 0, 1, 0]

    def test_zero_extend(self):
        assert zero_extend([1, 1], 4) == [1, 1, 0, 0]
        assert zero_extend([1, 1, 1, 1, 1], 3) == [1, 1, 1]

    def test_shift_left_const(self):
        assert shift_left_const([1, 0, 1], 1, 4) == [0, 1, 0, 1]
        assert shift_left_const([1, 1], 3, 4) == [0, 0, 0, 1]

    def test_shift_right_const(self):
        assert shift_right_const([0, 1, 0, 1], 1) == [1, 0, 1, 0]
        assert shift_right_const([1, 1], 3) == [0, 0]

    def test_adder_block(self):
        aig = AIG()
        a = [aig.add_pi() for _ in range(4)]
        b = [aig.add_pi() for _ in range(4)]
        total, carry = ripple_carry_adder(aig, a, b)
        for bit in total:
            aig.add_po(bit)
        aig.add_po(carry)
        out = simulate(aig, self._bits(9, 4) + self._bits(8, 4))
        assert sum(bit << i for i, bit in enumerate(out)) == 17

    def test_adder_block_width_mismatch(self):
        aig = AIG()
        with pytest.raises(ValueError):
            ripple_carry_adder(aig, [aig.add_pi()], [aig.add_pi(), aig.add_pi()])

    def test_subtractor_block(self):
        aig = AIG()
        a = [aig.add_pi() for _ in range(4)]
        b = [aig.add_pi() for _ in range(4)]
        diff, no_borrow = ripple_borrow_subtractor(aig, a, b)
        for bit in diff:
            aig.add_po(bit)
        aig.add_po(no_borrow)
        out = simulate(aig, self._bits(12, 4) + self._bits(5, 4))
        assert sum(bit << i for i, bit in enumerate(out[:4])) == 7
        assert out[4] == 1  # no borrow: 12 >= 5
        out = simulate(aig, self._bits(3, 4) + self._bits(5, 4))
        assert out[4] == 0  # borrow: 3 < 5

    def test_comparator(self):
        aig = AIG()
        a = [aig.add_pi() for _ in range(3)]
        b = [aig.add_pi() for _ in range(3)]
        aig.add_po(comparator_greater_equal(aig, a, b))
        for x in range(8):
            for y in range(8):
                out = simulate(aig, self._bits(x, 3) + self._bits(y, 3))
                assert out[0] == int(x >= y)
