"""Tests of the seeded random-AIG generator family."""

import pytest

from repro.aig.aiger import write_aiger_string
from repro.circuits.fuzz import FUZZ_KINDS, FuzzSpec, random_aig


class TestDeterminism:
    @pytest.mark.parametrize("kind", FUZZ_KINDS)
    def test_same_spec_same_graph(self, kind):
        for seed in (0, 1, 17):
            first = random_aig(kind, seed)
            second = random_aig(kind, seed)
            assert write_aiger_string(first) == write_aiger_string(second)

    @pytest.mark.parametrize("kind", FUZZ_KINDS)
    def test_different_seeds_differ(self, kind):
        serialised = {write_aiger_string(random_aig(kind, seed))
                      for seed in range(8)}
        assert len(serialised) > 1

    def test_spec_dict_round_trip(self):
        spec = FuzzSpec(kind="windowed", seed=5, num_inputs=6, num_gates=30,
                        num_outputs=3, fanin_window=7, skew=1.5)
        assert FuzzSpec.from_dict(spec.to_dict()) == spec
        assert (write_aiger_string(FuzzSpec.from_dict(spec.to_dict()).build())
                == write_aiger_string(spec.build()))


class TestShapes:
    @pytest.mark.parametrize("kind", FUZZ_KINDS)
    def test_requested_sizes_are_respected(self, kind):
        spec = FuzzSpec(kind=kind, seed=3, num_inputs=7, num_gates=40,
                        num_outputs=3)
        aig = spec.build()
        assert aig.num_pis == 7
        assert aig.num_pos == 3
        assert aig.num_ands > 0

    def test_windowed_is_deeper_than_layered(self):
        """The kinds must actually produce different structure classes."""
        def average_depth(kind):
            total = 0
            for seed in range(10):
                aig = random_aig(kind, seed, num_gates=60, skew=3.0)
                total += aig.depth()
            return total / 10

        assert average_depth("windowed") > average_depth("layered")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz kind"):
            FuzzSpec(kind="chaotic")

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            FuzzSpec(num_gates=0)
