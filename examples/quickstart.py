#!/usr/bin/env python3
"""Quickstart: optimise a synthesis flow for one circuit with BOiLS.

This is the 60-second tour of the public API:

1. build (or load) a circuit as an AIG,
2. wrap it in a QoR evaluator (Equation 1 of the paper: LUT count and LUT
   levels after K-LUT mapping, normalised by the ``resyn2`` reference),
3. run BOiLS for a small budget of tested sequences,
4. inspect the best sequence it found.

Run:  python examples/quickstart.py
"""

from repro import get_circuit
from repro.bo import BOiLS, SequenceSpace
from repro.mapping import map_aig
from repro.qor import QoREvaluator
from repro.synth.operations import apply_sequence, sequence_to_string


def main() -> None:
    # --- 1. A circuit.  Any of the ten EPFL-style benchmarks works; the
    # width parameter controls instance size (larger = slower, closer to
    # the paper's full-size instances).
    aig = get_circuit("multiplier", width=6)
    print(f"circuit: {aig.name}  |  {aig.stats()}")

    # --- 2. The QoR black box.  The evaluator applies a sequence of
    # synthesis operations, maps the result onto 6-input LUTs and returns
    # area/reference_area + delay/reference_delay.
    evaluator = QoREvaluator(aig, lut_size=6)
    print(f"resyn2 reference: {evaluator.reference_area} LUTs, "
          f"{evaluator.reference_delay} levels")

    # --- 3. BOiLS.  The space is Alg^K: sequences of K operations drawn
    # from the paper's eleven-operation alphabet.
    space = SequenceSpace(sequence_length=8)
    optimiser = BOiLS(
        space=space,
        seed=0,
        num_initial=5,            # random sequences before the GP kicks in
        local_search_queries=150,  # acquisition budget per BO round
        fit_every=2,               # refit SSK decays every 2 rounds
    )
    result = optimiser.optimise(evaluator, budget=20)

    # --- 4. Results.
    print(f"\nbest sequence ({sequence_to_string(result.best_sequence)}):")
    for op in result.best_sequence:
        print(f"  - {op}")
    print(f"QoR improvement over resyn2: {result.best_improvement:.2f}%")
    print(f"mapped result: {result.best_area} LUTs, {result.best_delay} levels")

    # The sequence is just a list of operation names: apply it directly to
    # get the optimised AIG and map it yourself.
    optimised = apply_sequence(aig, result.best_sequence)
    mapping = map_aig(optimised)
    print(f"re-checked mapping: {mapping.area} LUTs, {mapping.delay} levels")


if __name__ == "__main__":
    main()
