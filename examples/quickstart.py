#!/usr/bin/env python3
"""Quickstart: optimise a synthesis flow for one circuit with BOiLS.

This is the 60-second tour of the public API (:mod:`repro.api`):

1. declare a :class:`Problem` — circuit, search-space size, objective,
2. hand it to :func:`run_problem` with a method name and a budget,
3. inspect the best sequence it found.

The whole thing is five lines::

    from repro.api import Problem, run_problem

    result = run_problem(Problem("multiplier", width=6, sequence_length=8),
                         "boils", budget=20)
    print(result.best_improvement)

Run:  python examples/quickstart.py
      REPRO_BUDGET=40 python examples/quickstart.py     (bigger run)
"""

import os

from repro.api import Problem, run_problem
from repro.synth.operations import sequence_to_string


def main() -> None:
    # --- 1. The problem.  Any registered circuit works; the width
    # parameter controls instance size (larger = slower, closer to the
    # paper's full-size instances).  The objective defaults to the
    # paper's Equation 1; try objective="area" or "delay" for the
    # single-metric variants.
    problem = Problem("multiplier", width=6, sequence_length=8)
    evaluator = problem.build_evaluator()
    print(f"circuit: {evaluator.aig.name}  |  {evaluator.aig.stats()}")
    print(f"resyn2 reference: {evaluator.reference_area} LUTs, "
          f"{evaluator.reference_delay} levels")

    # --- 2. Run BOiLS.  Constructor overrides ride along as keyword
    # arguments; the method's registered grid defaults fill in the rest.
    result = run_problem(
        problem,
        "boils",
        seed=0,
        budget=int(os.environ.get("REPRO_BUDGET", 20)),
        num_initial=5,             # random sequences before the GP kicks in
        local_search_queries=150,  # acquisition budget per BO round
        fit_every=2,               # refit SSK decays every 2 rounds
    )

    # --- 3. Results.
    print(f"\nbest sequence ({sequence_to_string(result.best_sequence)}):")
    for op in result.best_sequence:
        print(f"   - {op}")
    print(f"\narea / delay    : {result.best_area} LUTs / "
          f"{result.best_delay} levels")
    print(f"QoR improvement : {result.best_improvement:.2f}% over resyn2")
    print(f"evaluations     : {result.num_evaluations}")
    print(f"metadata        : trust-region radius "
          f"{result.metadata['trust_region_radius']}, "
          f"{result.metadata['num_restarts']} restart(s)")


if __name__ == "__main__":
    main()
