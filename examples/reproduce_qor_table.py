#!/usr/bin/env python3
"""Reproduce the paper's evaluation artefacts end to end.

Regenerates, at a configurable scale, every table and figure of the
paper's Section IV:

* Figure 3 (top):   QoR-improvement table over all circuits and methods,
* Figure 1:         evaluations needed to reach 97.5 % of BOiLS's QoR,
* Figure 3 (middle): convergence curves on the large circuits,
* Figure 3 (bottom): area/delay Pareto fronts and %-on-front statistics,

and writes everything to ``examples/output/``.

Run (quick, a few minutes):
    python examples/reproduce_qor_table.py

Run closer to paper scale (hours; uses all ten circuits, K=20, 5 seeds):
    REPRO_BUDGET=200 REPRO_SEEDS=5 REPRO_SEQ_LENGTH=20 \
        python examples/reproduce_qor_table.py --full

Note: this example deliberately sticks to the *legacy* API
(``ExperimentConfig`` + ``run_experiment``) to exercise the
compatibility shims; see ``compare_optimisers.py`` for the declarative
``Campaign`` workflow that new code should use.
"""

import argparse
import os
from pathlib import Path

from repro.circuits.registry import LARGE_CIRCUITS
from repro.experiments import (
    ExperimentConfig,
    build_qor_table,
    run_experiment,
    sample_efficiency_study,
)
from repro.experiments.convergence import build_convergence_curves
from repro.experiments.figures import (
    render_figure1,
    render_figure3_convergence,
    render_figure3_pareto,
    render_figure3_table,
)
from repro.experiments.pareto import build_pareto_study

OUTPUT_DIR = Path(__file__).parent / "output"


def make_config(full: bool) -> ExperimentConfig:
    if full:
        circuits = ("adder", "bar", "div", "hyp", "log2", "max",
                    "multiplier", "sin", "sqrt", "square")
        methods = ("boils", "sbo", "rs", "greedy", "ga", "a2c", "ppo")
    else:
        circuits = ("adder", "sqrt", "multiplier", "max")
        methods = ("boils", "sbo", "rs", "greedy", "ga")
    return ExperimentConfig(
        budget=int(os.environ.get("REPRO_BUDGET", 15)),
        num_seeds=int(os.environ.get("REPRO_SEEDS", 1)),
        sequence_length=int(os.environ.get("REPRO_SEQ_LENGTH", 8)),
        circuits=circuits,
        methods=methods,
        method_overrides={
            "boils": {"num_initial": 5, "local_search_queries": 150, "adam_steps": 3,
                      "fit_every": 2},
            "sbo": {"num_initial": 5, "adam_steps": 3, "fit_every": 2},
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use all ten circuits and all methods")
    args = parser.parse_args()

    OUTPUT_DIR.mkdir(exist_ok=True)
    config = make_config(args.full)

    # ------------------------------------------------------------------
    print("=== Figure 3 (top): QoR table ===")
    results = run_experiment(config, progress=lambda m: print(f"  [{m}]"))
    table = build_qor_table(results)
    text = render_figure3_table(table)
    print(text)
    (OUTPUT_DIR / "fig3_top_table.txt").write_text(text)
    (OUTPUT_DIR / "fig3_top_table.csv").write_text(table.to_csv())

    # ------------------------------------------------------------------
    print("\n=== Figure 3 (middle): convergence on large circuits ===")
    large = [c for c in config.circuits if c in LARGE_CIRCUITS] or list(config.circuits)[:2]
    large_results = [r for r in results if r.circuit in large]
    curves = build_convergence_curves(large_results)
    (OUTPUT_DIR / "fig3_middle_convergence.csv").write_text(curves.to_csv())
    (OUTPUT_DIR / "fig3_middle_convergence.txt").write_text(
        render_figure3_convergence(curves))
    print(f"  wrote curves for {curves.circuits}")

    # ------------------------------------------------------------------
    print("\n=== Figure 3 (bottom): Pareto fronts ===")
    pareto = build_pareto_study(large_results)
    pareto_text = render_figure3_pareto(pareto)
    print("\n".join(pareto_text.splitlines()[:8]))
    (OUTPUT_DIR / "fig3_bottom_pareto.txt").write_text(pareto_text)
    (OUTPUT_DIR / "fig3_bottom_pareto.csv").write_text(pareto.to_csv())

    # ------------------------------------------------------------------
    print("\n=== Figure 1: sample efficiency ===")
    fig1_config = ExperimentConfig(
        budget=config.budget, num_seeds=config.num_seeds,
        sequence_length=config.sequence_length,
        circuits=tuple(config.circuits[:2]),
        methods=tuple(m for m in config.methods if m in ("boils", "sbo", "rs", "ga")),
        method_overrides=config.method_overrides,
    )
    study = sample_efficiency_study(fig1_config, extended_budget=3 * config.budget)
    fig1_text = render_figure1(study)
    print(fig1_text)
    (OUTPUT_DIR / "fig1_sample_efficiency.txt").write_text(fig1_text)

    print(f"\nall artefacts written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()
