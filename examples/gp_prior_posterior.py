#!/usr/bin/env python3
"""Figure 2 walkthrough: GP prior and posterior with the SE kernel.

Draws sample functions from a squared-exponential GP prior, conditions the
GP on a handful of noisy observations, refits the kernel hyperparameters
by minimising the negative log marginal likelihood (Equation 4 of the
paper, using the same projected-Adam optimiser BOiLS uses for the SSK
decays) and draws posterior samples — the two panels of the paper's
Figure 2, rendered as ASCII charts.

Run:  python examples/gp_prior_posterior.py
"""

import numpy as np

from repro.experiments.figures import render_figure2
from repro.gp import GaussianProcess, SquaredExponentialKernel


def main() -> None:
    rng = np.random.default_rng(7)
    grid = np.linspace(0.0, 5.0, 70)[:, None]

    # Training data: a smooth function observed at six points.
    train_x = np.array([0.4, 1.0, 1.8, 2.6, 3.3, 4.3])[:, None]
    train_y = np.sin(1.6 * train_x).ravel() + 0.05 * rng.normal(size=train_x.shape[0])

    gp = GaussianProcess(SquaredExponentialKernel(input_dim=1), noise_variance=1e-4)

    prior_samples = gp.sample_prior(grid, num_samples=3, rng=rng)

    print("fitting kernel hyperparameters by projected Adam on the NLL ...")
    before = GaussianProcess(SquaredExponentialKernel(1)).fit(train_x, train_y)
    params = gp.fit_hyperparameters(train_x, train_y, num_steps=30, learning_rate=0.1)
    print(f"  fitted params: { {k: round(v, 3) for k, v in params.items()} }")
    print(f"  NLL before fit: {before.negative_log_marginal_likelihood():.3f}   "
          f"after fit: {gp.negative_log_marginal_likelihood():.3f}")

    posterior_samples = gp.sample_posterior(grid, num_samples=3, rng=rng)
    print()
    print(render_figure2(grid.ravel(), prior_samples, posterior_samples))

    mean, std = gp.predict(train_x)
    print("\nposterior at the training points (mean vs observed, std):")
    for x, m, y, s in zip(train_x.ravel(), mean, train_y, std):
        print(f"  x={x:4.2f}  mean={m:+.3f}  observed={y:+.3f}  std={s:.3f}")


if __name__ == "__main__":
    main()
