#!/usr/bin/env python3
"""Compare BOiLS against the paper's baselines on a few circuits.

Reproduces a miniature version of Figure 3's top table: every method gets
the same evaluation budget on the same circuits, and the script prints the
per-circuit best QoR improvement plus the win counts.

Run:  python examples/compare_optimisers.py            (quick, ~1 minute)
      REPRO_BUDGET=60 REPRO_SEEDS=3 python examples/compare_optimisers.py
"""

import os

from repro.experiments import ExperimentConfig, build_qor_table, run_experiment
from repro.experiments.figures import render_figure3_table


def main() -> None:
    config = ExperimentConfig(
        budget=int(os.environ.get("REPRO_BUDGET", 12)),
        num_seeds=int(os.environ.get("REPRO_SEEDS", 1)),
        sequence_length=int(os.environ.get("REPRO_SEQ_LENGTH", 6)),
        circuits=("adder", "sqrt", "multiplier"),
        methods=("boils", "sbo", "rs", "greedy", "ga"),
        method_overrides={
            "boils": {"num_initial": 4, "local_search_queries": 100, "adam_steps": 3,
                      "fit_every": 2},
            "sbo": {"num_initial": 4, "adam_steps": 3, "fit_every": 2},
        },
    )

    print(f"running {len(config.methods)} methods x {len(config.circuits)} circuits "
          f"x {config.num_seeds} seeds, budget {config.budget} ...\n")
    results = run_experiment(config, progress=lambda msg: print(f"  [{msg}]"))

    table = build_qor_table(results)
    print()
    print(render_figure3_table(table))
    print()
    for method in table.methods:
        print(f"{method:12s} wins on {table.wins(method)} / {len(table.circuits)} circuits")


if __name__ == "__main__":
    main()
