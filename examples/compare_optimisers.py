#!/usr/bin/env python3
"""Compare BOiLS against the paper's baselines with a resumable campaign.

Reproduces a miniature version of Figure 3's top table through the
declarative :mod:`repro.api` workflow: one :class:`Campaign` describes
the whole (problem × method × seed) grid, ``run_campaign`` executes it
into a run directory (one per grid scale, printed at start-up), and
killing the script at any point loses nothing — rerunning it with the
same knobs (or ``repro resume --store <printed directory>``) picks up
exactly where it stopped, bit-identically.

Run:  python examples/compare_optimisers.py            (quick, ~1 minute)
      REPRO_BUDGET=60 REPRO_SEEDS=3 python examples/compare_optimisers.py
"""

from pathlib import Path

from repro.api import Campaign, Problem, run_campaign
from repro.experiments import build_qor_table
from repro.experiments.figures import render_figure3_table

OUTPUT = Path(__file__).parent / "output"


def store_for(campaign: Campaign) -> Path:
    """One run directory per grid scale, so changing the REPRO_* knobs
    starts a fresh campaign instead of clashing with the stored one."""
    k = campaign.problems[0].sequence_length
    return OUTPUT / (f"compare-b{campaign.budget}-s{len(campaign.seeds)}-k{k}")


def main() -> None:
    campaign = Campaign(
        name="compare-optimisers",
        problems=tuple(Problem(circuit, sequence_length=6)
                       for circuit in ("adder", "sqrt", "multiplier")),
        methods=("boils", "sbo", "rs", "greedy", "ga"),
        seeds=(0,),
        budget=12,
        method_overrides={
            "boils": {"num_initial": 4, "local_search_queries": 100,
                      "adam_steps": 3, "fit_every": 2},
            "sbo": {"num_initial": 4, "adam_steps": 3, "fit_every": 2},
        },
    # The REPRO_BUDGET / REPRO_SEEDS / REPRO_SEQ_LENGTH environment knobs
    # are an explicit layer now — nothing ambient:
    ).with_env_overrides()

    store = store_for(campaign)
    cells = campaign.cells()
    print(f"running {len(campaign.methods)} methods x "
          f"{len(campaign.problems)} problems x {len(campaign.seeds)} seeds "
          f"({len(cells)} cells), budget {campaign.budget}")
    print(f"run directory: {store} (safe to kill + rerun)\n")

    records = run_campaign(campaign, store=store,
                           progress=lambda msg: print(f"  [{msg}]"))

    results = [record.to_result() for record in records]
    table = build_qor_table(results)
    print()
    print(render_figure3_table(table))
    print()
    for method in table.methods:
        print(f"{method:12s} wins on {table.wins(method)} circuit(s), "
              f"average improvement {table.row_average()[method]:.2f}%")
    best = max(records, key=lambda record: record.best_improvement)
    print(f"\nbest single run: {best.method_display} on {best.circuit} "
          f"({best.best_improvement:.2f}%, metadata keys: "
          f"{sorted(best.metadata)})")


if __name__ == "__main__":
    main()
