#!/usr/bin/env python3
"""Optimise a custom objective: area-only synthesis of a user circuit.

The paper notes that "BOiLS is not tied to a specific black-box and can be
utilised with other quantities of interest, e.g. area or delay disjointly
by simply modifying Equation (1)".  This example shows both extension
points:

* building your own circuit directly with the AIG API (instead of using a
  bundled benchmark generator), and
* wrapping a custom figure of merit (here: LUT count only, delay ignored)
  as the black box that BOiLS optimises, by subclassing ``QoREvaluator``.

Run:  python examples/custom_objective.py
"""

from repro.aig import AIG
from repro.bo import BOiLS, SequenceSpace
from repro.mapping import map_aig
from repro.qor import QoREvaluator


def build_priority_encoder(width: int = 12) -> AIG:
    """A simple user circuit: 'index of the highest set bit' encoder."""
    aig = AIG(name=f"priority_encoder_{width}")
    inputs = [aig.add_pi(f"x{i}") for i in range(width)]
    out_bits = max(1, (width - 1).bit_length())
    index = [0] * out_bits      # constant-0 literals
    found = 0
    for position in range(width - 1, -1, -1):
        is_here = aig.add_and(inputs[position], aig.add_not(found) if found else 1)
        found = aig.add_or(found, inputs[position]) if found else inputs[position]
        for bit in range(out_bits):
            if (position >> bit) & 1:
                index[bit] = aig.add_or(index[bit], is_here) if index[bit] else is_here
    for bit, literal in enumerate(index):
        aig.add_po(literal, name=f"idx{bit}")
    aig.add_po(found, name="valid")
    return aig


class AreaOnlyEvaluator(QoREvaluator):
    """Equation (1) with the delay term dropped: minimise LUT count only."""

    def _qor(self, mapping) -> float:  # noqa: D401 - see QoREvaluator
        return mapping.area / self.reference_area


def main() -> None:
    aig = build_priority_encoder(12)
    print(f"user circuit: {aig.stats()}")
    baseline = map_aig(aig)
    print(f"unoptimised mapping: {baseline.area} LUTs, {baseline.delay} levels")

    evaluator = AreaOnlyEvaluator(aig, lut_size=6)
    print(f"resyn2 reference area: {evaluator.reference_area} LUTs")

    optimiser = BOiLS(space=SequenceSpace(sequence_length=8), seed=1,
                      num_initial=5, local_search_queries=120, fit_every=2)
    result = optimiser.optimise(evaluator, budget=20)

    print(f"\nbest sequence: {', '.join(result.best_sequence)}")
    print(f"area-only QoR improvement vs resyn2: "
          f"{(1.0 - result.best_qor) * 100:.2f}% fewer LUTs "
          f"({result.best_area} LUTs, {result.best_delay} levels)")


if __name__ == "__main__":
    main()
