#!/usr/bin/env python3
"""Extend repro without editing it: custom circuit + custom objective.

The paper notes that "BOiLS is not tied to a specific black-box and can be
utilised with other quantities of interest, e.g. area or delay disjointly
by simply modifying Equation (1)".  With the registry-based API that is a
*registration*, not a code edit:

* :func:`repro.circuits.registry.register_circuit` makes a user circuit a
  first-class benchmark (usable from :class:`repro.api.Problem`, campaign
  JSON and the CLI alike), and
* :func:`repro.registry.register_objective` does the same for a custom
  figure of merit — here LUT count only, with the built-in ``"area"``
  objective shown alongside a hand-rolled one.

Installed packages can do the same through the ``repro.circuits`` /
``repro.objectives`` / ``repro.optimisers`` entry-point groups.

Run:  python examples/custom_objective.py
"""

import os

from repro.aig import AIG
from repro.api import Objective, Problem, register_circuit, register_objective, run_problem
from repro.mapping import map_aig


@register_circuit("priority-encoder", display_name="Priority Encoder",
                  default_width=12)
def build_priority_encoder(width: int) -> AIG:
    """A simple user circuit: 'index of the highest set bit' encoder."""
    aig = AIG(name=f"priority_encoder_{width}")
    inputs = [aig.add_pi(f"x{i}") for i in range(width)]
    out_bits = max(1, (width - 1).bit_length())
    index = [0] * out_bits      # constant-0 literals
    found = 0
    for position in range(width - 1, -1, -1):
        is_here = aig.add_and(inputs[position], aig.add_not(found) if found else 1)
        found = aig.add_or(found, inputs[position]) if found else inputs[position]
        for bit in range(out_bits):
            if (position >> bit) & 1:
                index[bit] = aig.add_or(index[bit], is_here) if index[bit] else is_here
    for bit, literal in enumerate(index):
        aig.add_po(literal, name=f"idx{bit}")
    aig.add_po(found, name="valid")
    return aig


@register_objective("squared-area")
def make_squared_area() -> Objective:
    """A custom figure of merit: (normalised area)^2, delay ignored.

    Squaring sharpens the optimiser's preference for small mappings —
    the kind of tweak Equation (1) cannot express but a registered
    objective can.
    """

    class SquaredArea(Objective):
        key = "squared-area"

        def value(self, area, delay, area_ref, delay_ref):
            return (area / area_ref) ** 2

    return SquaredArea()


def main() -> None:
    budget = int(os.environ.get("REPRO_BUDGET", 20))

    aig = build_priority_encoder(12)
    print(f"user circuit: {aig.stats()}")
    baseline = map_aig(aig)
    print(f"unoptimised mapping: {baseline.area} LUTs, {baseline.delay} levels")

    # The registered circuit and objectives are now addressable by name —
    # the same strings work in campaign JSON files and on the CLI.
    for objective in ("area", "squared-area"):
        problem = Problem("priority-encoder", sequence_length=8,
                          objective=objective)
        result = run_problem(problem, "boils", seed=1, budget=budget,
                             num_initial=5, local_search_queries=120,
                             fit_every=2)
        print(f"\nobjective {objective!r}:")
        print(f"  best sequence   : {', '.join(result.best_sequence)}")
        print(f"  area / delay    : {result.best_area} LUTs / "
              f"{result.best_delay} levels")
        print(f"  improvement     : {result.best_improvement:.2f}% "
              "over resyn2 (under this objective)")


if __name__ == "__main__":
    main()
