"""Benchmark E1 — Figure 3 (top row): the QoR-improvement table.

Paper protocol: ten EPFL circuits × {DRiLLS PPO/A2C, Graph-RL, GA, RS,
Greedy, SBO, BOiLS, EPFL-best}, budget 200, five seeds, reporting the best
QoR improvement over ``resyn2`` in percent.  Expected shape: BOiLS wins on
most circuits (8/10 in the paper) with SBO usually second.

This harness runs the same grid at benchmark scale (smaller circuits,
budget and seed count — see ``conftest.bench_config``), regenerates the
table, writes it to ``benchmarks/artifacts/`` and asserts the qualitative
shape: BOiLS's average improvement is at least on par with the
non-surrogate baselines.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import build_qor_table, run_experiment
from repro.experiments.figures import render_figure3_table

CIRCUITS = ("adder", "sqrt", "multiplier", "max")
METHODS = ("boils", "sbo", "rs", "greedy", "ga", "a2c")


@pytest.fixture(scope="module")
def qor_results():
    config = bench_config(CIRCUITS, METHODS)
    return run_experiment(config), config


def test_fig3_qor_table_regeneration(qor_results, benchmark):
    results, config = qor_results

    def build():
        return build_qor_table(results)

    table = benchmark(build)
    write_artifact("fig3_top_qor_table.txt", render_figure3_table(table))
    write_artifact("fig3_top_qor_table.csv", table.to_csv())

    # Shape checks (not absolute-number checks): every requested cell is
    # filled, and the table carries one row per circuit.
    assert set(table.circuits) == set(config.circuits)
    for circuit in table.circuits:
        for method in table.methods:
            assert method in table.values[circuit]


def test_fig3_boils_is_competitive(qor_results):
    """Directional claim of the paper: the surrogate methods (BOiLS, SBO)
    should not be beaten on average by pure random exploration at equal
    budget."""
    results, _ = qor_results
    table = build_qor_table(results)
    averages = table.row_average()
    surrogate_best = max(averages.get("BOiLS", -1e9), averages.get("SBO", -1e9))
    assert surrogate_best >= averages.get("RS", 0.0) - 2.0


def test_fig3_wins_counted(qor_results):
    results, _ = qor_results
    table = build_qor_table(results)
    total_wins = sum(table.wins(method) for method in table.methods)
    assert total_wins == len(table.circuits)
