"""Shared configuration for the benchmark harnesses.

Every benchmark regenerates one of the paper's tables or figures.  The
default scale is deliberately small so that ``pytest benchmarks/
--benchmark-only`` finishes in a few minutes on a laptop; the environment
variables below raise it towards the paper's protocol:

============================  =======================================  ========
variable                      meaning                                  paper
============================  =======================================  ========
``REPRO_BENCH_BUDGET``        evaluations per optimisation run         200
``REPRO_BENCH_SEEDS``         random seeds per (method, circuit)       5
``REPRO_BENCH_SEQ_LENGTH``    operations per sequence (K)              20
``REPRO_BENCH_CIRCUITS``      comma-separated circuit subset           all ten
``REPRO_BENCH_METHODS``       comma-separated method subset            all
============================  =======================================  ========

Artefacts (CSV series and ASCII renderings of each figure) are written to
``benchmarks/artifacts/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def _env_list(name: str, default):
    raw = os.environ.get(name)
    if not raw:
        return tuple(default)
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def bench_config(circuits, methods, budget_scale: float = 1.0) -> ExperimentConfig:
    """Benchmark-scale experiment configuration with env overrides."""
    budget = max(4, int(_env_int("REPRO_BENCH_BUDGET", 10) * budget_scale))
    return ExperimentConfig(
        budget=budget,
        num_seeds=_env_int("REPRO_BENCH_SEEDS", 1),
        sequence_length=_env_int("REPRO_BENCH_SEQ_LENGTH", 6),
        circuit_width=None,
        circuits=_env_list("REPRO_BENCH_CIRCUITS", circuits),
        methods=_env_list("REPRO_BENCH_METHODS", methods),
        method_overrides={
            "boils": {"num_initial": 4, "local_search_queries": 100, "adam_steps": 3,
                      "fit_every": 2},
            "sbo": {"num_initial": 4, "adam_steps": 3, "fit_every": 2},
        },
    )


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session", autouse=True)
def _fresh_bench_substrate_artifact():
    """Start every benchmark session from empty BENCH_*.json artifacts.

    Entries are merged into the artifacts by whichever benchmark files run
    (substrate speedups, engine throughput), so they must be cleared once
    per session — regardless of file ordering — to guarantee every entry
    comes from *this* run.  A partial rerun then leaves untested paths
    missing from the artifact, which ``check_perf_regression.py`` reports
    loudly, instead of silently re-validating stale numbers.
    """
    for name in ("BENCH_substrate.json", "BENCH_engine.json"):
        path = ARTIFACT_DIR / name
        if path.exists():
            path.unlink()
    yield


def write_artifact(name: str, content: str) -> Path:
    """Write a text artefact (CSV / ASCII figure) next to the benchmarks."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(content)
    return path
