"""Benchmark A1 — ablation of BOiLS's two components.

The paper motivates BOiLS by its two modifications over standard BO:
(i) the sub-sequence string kernel instead of a positional categorical
kernel, and (ii) trust-region constrained acquisition maximisation instead
of unrestricted search.  SBO already serves as the "neither" arm; this
ablation adds the "SSK only" arm (BOiLS with the trust region disabled by
pinning the radius at K) and the kernel-order ablation (SSK order 1 ≈ a
positional kernel), so the contribution of each piece can be measured.

Artefacts: a small table of best-improvement per arm.  Assertions check
the arms run to budget and produce comparable, well-formed results — the
directional claim (full BOiLS ≥ ablated arms on average) is recorded in
the artefact rather than asserted, because at benchmark scale the gap is
within seed noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.bo import BOiLS, StandardBO
from repro.bo.trust_region import TrustRegionConfig
from repro.circuits import get_circuit
from repro.qor import QoREvaluator

CIRCUIT = "sqrt"


@pytest.fixture(scope="module")
def ablation_results():
    config = bench_config((CIRCUIT,), ("boils",))
    space = config.space()
    aig = get_circuit(CIRCUIT, width=config.circuit_width)
    evaluator = QoREvaluator(aig)

    arms = {
        "BOiLS (full)": lambda seed: BOiLS(
            space=space, seed=seed, num_initial=4, local_search_queries=100,
            adam_steps=3, fit_every=2),
        "BOiLS (no trust region)": lambda seed: BOiLS(
            space=space, seed=seed, num_initial=4, local_search_queries=100,
            adam_steps=3, fit_every=2,
            trust_region_config=TrustRegionConfig(
                initial_radius=space.sequence_length,
                failure_streak_to_shrink=10 ** 9)),
        "BOiLS (order-1 kernel)": lambda seed: BOiLS(
            space=space, seed=seed, num_initial=4, local_search_queries=100,
            adam_steps=3, fit_every=2, max_subsequence_length=1),
        "SBO (no SSK, no TR)": lambda seed: StandardBO(
            space=space, seed=seed, num_initial=4, adam_steps=3, fit_every=2),
    }

    results = {}
    for name, factory in arms.items():
        improvements = []
        for seed in range(config.num_seeds):
            evaluator.reset_history()
            run = factory(seed).optimise(evaluator, budget=config.budget)
            improvements.append(run.best_improvement)
        results[name] = (float(np.mean(improvements)), config.budget)
    return results


def test_ablation_all_arms_complete(ablation_results, benchmark):
    results = benchmark(lambda: ablation_results)
    lines = ["arm,mean_best_improvement,budget"]
    for name, (mean, budget) in results.items():
        lines.append(f"{name},{mean:.4f},{budget}")
    write_artifact("ablation_components.csv", "\n".join(lines))
    assert set(results) == {
        "BOiLS (full)", "BOiLS (no trust region)",
        "BOiLS (order-1 kernel)", "SBO (no SSK, no TR)",
    }
    for mean, _ in results.values():
        assert np.isfinite(mean)


def test_ablation_full_boils_not_dominated_by_sbo(ablation_results):
    """Weak directional check: the full method is within noise of, or
    better than, the no-SSK/no-TR arm at equal budget."""
    full = ablation_results["BOiLS (full)"][0]
    sbo = ablation_results["SBO (no SSK, no TR)"][0]
    assert full >= sbo - 5.0
