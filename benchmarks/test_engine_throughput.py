"""Micro-benchmark: engine throughput across a jobs sweep.

Sweeps jobs ∈ {1, 2, 4} over identical deterministic batches and
measures ``sequences_per_second`` through :class:`repro.engine.EvaluationEngine`
three ways per jobs value:

* ``jobs=1`` — the in-process serial path (the denominator).
* **warm pool** (``adaptive=False``) — raw pool throughput *after*
  warm-up: the pool is built and its workers initialised on untimed
  warm-up batches (shared-memory AIG attach + warm reference stats), so
  the timed rounds measure steady-state parallel evaluation.  This is
  the number the parallelism-inversion acceptance gate tracks.
* **adaptive** (default engine) — the planner-routed path, recorded
  informationally with its decisions; on any hardware it must not
  invert, because the planner simply stays serial when the pool cannot
  win.

Results land in ``benchmarks/artifacts/BENCH_engine.json`` (gated by
``benchmarks/check_perf_regression.py`` against the committed baseline)
plus the historical CSV, and the headline rates ride along in
``BENCH_substrate.json``.  Bit-identity of all paths is asserted
unconditionally.

The artifact records ``available_cpus`` because the jobs-scaling ratios
are hardware-dependent: on a single-CPU container a warm pool cannot
beat serial, so the regression gate applies its 1.5× jobs=2 floor only
to artifacts measured with ≥ 2 CPUs (see ``check_perf_regression.py``).

Scale knobs: ``REPRO_BENCH_ENGINE_BATCH`` (batch size, default 24),
``REPRO_BENCH_ENGINE_ROUNDS`` (timed rounds, default 3).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import write_artifact
from benchmarks.test_substrate_performance import record_bench_entry
from repro.bo.space import SequenceSpace
from repro.engine import EvaluationEngine, EvaluatorSpec
from repro.engine.planner import effective_parallelism

import numpy as np

_WARMUP_BATCHES = 2
_JOBS_SWEEP = (1, 2, 4)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def _measure(engine, warmups, timed):
    """Warm the engine on untimed batches, then time the real rounds."""
    for batch in warmups:
        engine.compute_batch(batch)
    start = time.perf_counter()
    records = [engine.compute_batch(batch) for batch in timed]
    seconds = time.perf_counter() - start
    return records, seconds


def test_engine_throughput_jobs_sweep():
    batch_size = max(4, _env_int("REPRO_BENCH_ENGINE_BATCH", 24))
    rounds = max(1, _env_int("REPRO_BENCH_ENGINE_ROUNDS", 3))
    spec = EvaluatorSpec.for_circuit("adder", width=4)
    space = SequenceSpace(sequence_length=4)
    # One deterministic stream for the whole sweep: every jobs value sees
    # byte-identical warm-up and timed batches.
    rng = np.random.default_rng(0)
    warmups = [[space.to_names(row) for row in space.sample(batch_size, rng)]
               for _ in range(_WARMUP_BATCHES)]
    timed = [[space.to_names(row) for row in space.sample(batch_size, rng)]
             for _ in range(rounds)]
    timed_evals = batch_size * rounds

    per_jobs = {}
    csv_lines = ["path,jobs,batch_size,rounds,seconds,sequences_per_second"]
    serial_records = None
    for jobs in _JOBS_SWEEP:
        if jobs == 1:
            with EvaluationEngine(spec, jobs=1) as engine:
                records, seconds = _measure(engine, warmups, timed)
            serial_records = records
            entry = {
                "mode": "serial",
                "seconds": seconds,
                "sequences_per_second": timed_evals / seconds,
            }
            csv_lines.append(
                f"serial,1,{batch_size},{rounds},{seconds:.4f},"
                f"{timed_evals / seconds:.2f}")
        else:
            # Raw warm-pool throughput: planning disabled so every timed
            # batch goes through the (already warm) pool.
            with EvaluationEngine(spec, jobs=jobs, adaptive=False) as engine:
                records, seconds = _measure(engine, warmups, timed)
                pool_meta = engine.metadata()["pool"]
            assert records == serial_records, (
                f"warm pool at jobs={jobs} diverged from serial")
            # One pool build must have served warm-ups and timed rounds.
            assert pool_meta["builds"] == 1 and pool_meta["epoch"] == 0
            # The shipped (adaptive) engine, informationally: it may
            # legitimately route everything serial on few-core hosts.
            with EvaluationEngine(spec, jobs=jobs) as engine:
                adaptive_records, adaptive_seconds = _measure(
                    engine, warmups, timed)
                decisions = engine.metadata()["decisions"]
            assert adaptive_records == serial_records, (
                f"adaptive engine at jobs={jobs} diverged from serial")
            entry = {
                "mode": "warm_pool",
                "seconds": seconds,
                "sequences_per_second": timed_evals / seconds,
                "pool_builds": pool_meta["builds"],
                "adaptive_sequences_per_second": timed_evals / adaptive_seconds,
                "adaptive_decisions": [d["mode"] for d in decisions],
            }
            csv_lines.append(
                f"warm_pool,{jobs},{batch_size},{rounds},{seconds:.4f},"
                f"{timed_evals / seconds:.2f}")
        per_jobs[str(jobs)] = entry

    rate = {jobs: per_jobs[jobs]["sequences_per_second"] for jobs in per_jobs}
    artifact = {
        "version": 1,
        "available_cpus": effective_parallelism(max(_JOBS_SWEEP)),
        "batch_size": batch_size,
        "rounds": rounds,
        "warmup_batches": _WARMUP_BATCHES,
        "jobs": per_jobs,
        "ratios": {
            "jobs2_vs_jobs1": rate["2"] / rate["1"],
            "jobs4_vs_jobs2": rate["4"] / rate["2"],
        },
    }
    write_artifact("BENCH_engine.json",
                   json.dumps(artifact, indent=2, sort_keys=True,
                              allow_nan=False) + "\n")
    write_artifact("engine_throughput.csv", "\n".join(csv_lines) + "\n")
    # Headline rates ride along in the substrate artifact so the
    # end-to-end evaluation rate is tracked next to the hot-path ratios.
    record_bench_entry("engine_throughput", {
        "batch_size": batch_size,
        "rounds": rounds,
        "serial_sequences_per_second": rate["1"],
        "warm_pool_jobs2_sequences_per_second": rate["2"],
        "warm_pool_jobs4_sequences_per_second": rate["4"],
    })
