"""Micro-benchmark: serial vs parallel engine throughput.

Measures sequences/second through :class:`repro.engine.EvaluationEngine`
for the in-process path and a worker pool, on identical batches, and
records the numbers to ``benchmarks/artifacts/engine_throughput.csv`` so
later PRs can track the trajectory.  Pool start-up is included in the
parallel wall time — at this micro scale the pool often *loses* to the
serial path, which is exactly the trade-off the numbers are there to
expose; correctness (identical records from both paths) is asserted
unconditionally.

Scale knobs: ``REPRO_BENCH_ENGINE_BATCH`` (batch size, default 24) and
``REPRO_BENCH_ENGINE_JOBS`` (pool size, default 2).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import write_artifact
from benchmarks.test_substrate_performance import record_bench_entry
from repro.bo.space import SequenceSpace
from repro.engine import EvaluationEngine, EvaluatorSpec

import numpy as np


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def test_engine_throughput_serial_vs_parallel():
    batch_size = max(4, _env_int("REPRO_BENCH_ENGINE_BATCH", 24))
    jobs = max(2, _env_int("REPRO_BENCH_ENGINE_JOBS", 2))
    spec = EvaluatorSpec.for_circuit("adder", width=4)
    space = SequenceSpace(sequence_length=4)
    rng = np.random.default_rng(0)
    batch = [space.to_names(row) for row in space.sample(batch_size, rng)]

    with EvaluationEngine(spec, jobs=1) as serial_engine:
        start = time.perf_counter()
        serial_records = serial_engine.compute_batch(batch)
        serial_seconds = time.perf_counter() - start

    with EvaluationEngine(spec, jobs=jobs) as parallel_engine:
        start = time.perf_counter()
        parallel_records = parallel_engine.compute_batch(batch)
        parallel_seconds = time.perf_counter() - start

    assert parallel_records == serial_records
    assert serial_seconds > 0 and parallel_seconds > 0

    serial_rate = batch_size / serial_seconds
    parallel_rate = batch_size / parallel_seconds
    write_artifact(
        "engine_throughput.csv",
        "path,jobs,batch_size,seconds,sequences_per_second\n"
        f"serial,1,{batch_size},{serial_seconds:.4f},{serial_rate:.2f}\n"
        f"parallel,{jobs},{batch_size},{parallel_seconds:.4f},{parallel_rate:.2f}\n",
    )
    # Serial sequences/second rides along in the substrate artifact so the
    # end-to-end evaluation rate is tracked next to the hot-path ratios.
    record_bench_entry("engine_throughput", {
        "batch_size": batch_size,
        "jobs": jobs,
        "serial_sequences_per_second": serial_rate,
        "parallel_sequences_per_second": parallel_rate,
    })
