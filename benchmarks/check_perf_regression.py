"""Perf regression gate: compare BENCH_substrate.json to the baseline.

Usage (CI runs this after the benchmark suite)::

    python benchmarks/check_perf_regression.py \
        [--artifact benchmarks/artifacts/BENCH_substrate.json] \
        [--baseline benchmarks/baselines/BENCH_substrate_baseline.json] \
        [--tolerance 0.25]

The committed baseline stores the optimised/reference *speedup ratios*
of the four hot paths.  Ratios are what stays comparable across
machines: absolute seconds vary with hardware, but the ratio of two
measurements taken back-to-back on the same interpreter does not.  The
gate fails when any path's current speedup falls more than ``tolerance``
(default 25 %) below its committed baseline, i.e. when an edit has eaten
a quarter of a hot path's win.

To refresh the baseline after an intentional change, run the benchmark
suite and copy the artifact over the baseline file::

    PYTHONPATH=src python -m pytest benchmarks/test_substrate_performance.py -q
    cp benchmarks/artifacts/BENCH_substrate.json \
       benchmarks/baselines/BENCH_substrate_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_substrate.json"
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_substrate_baseline.json"


def check(artifact_path: Path, baseline_path: Path, tolerance: float) -> int:
    artifact = json.loads(artifact_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failures = []
    for name, base_entry in sorted(baseline.get("paths", {}).items()):
        base_speedup = base_entry.get("speedup")
        if base_speedup is None:
            continue  # informational entries (e.g. engine throughput)
        current_entry = artifact.get("paths", {}).get(name)
        if current_entry is None:
            failures.append(f"{name}: missing from artifact")
            continue
        current = float(current_entry["speedup"])
        floor = (1.0 - tolerance) * float(base_speedup)
        status = "OK" if current >= floor else "REGRESSED"
        print(f"{name:32s} baseline {base_speedup:6.2f}x  current {current:6.2f}x  "
              f"floor {floor:6.2f}x  {status}")
        if current < floor:
            failures.append(
                f"{name}: speedup {current:.2f}x fell below {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x, tolerance {tolerance:.0%})"
            )

    if failures:
        print("\nPerformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nAll hot-path speedups within tolerance.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()
    return check(args.artifact, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
