"""Perf regression gate: compare BENCH_*.json artifacts to baselines.

Usage (CI runs this after the benchmark suite)::

    python benchmarks/check_perf_regression.py \
        [--artifact benchmarks/artifacts/BENCH_substrate.json] \
        [--baseline benchmarks/baselines/BENCH_substrate_baseline.json] \
        [--engine-artifact benchmarks/artifacts/BENCH_engine.json] \
        [--engine-baseline benchmarks/baselines/BENCH_engine_baseline.json] \
        [--tolerance 0.25]

**Substrate gate.**  The committed baseline stores the
optimised/reference *speedup ratios* of the four hot paths.  Ratios are
what stays comparable across machines: absolute seconds vary with
hardware, but the ratio of two measurements taken back-to-back on the
same interpreter does not.  The gate fails when any path's current
speedup falls more than ``tolerance`` (default 25 %) below its committed
baseline, i.e. when an edit has eaten a quarter of a hot path's win.

**Engine gate.**  ``BENCH_engine.json`` records warm-pool
``sequences_per_second`` across jobs ∈ {1, 2, 4}.  Unlike the substrate
speedups, the jobs-scaling ratios depend on how many CPUs the measuring
host actually has — a warm pool physically cannot beat serial on one
core — so the artifact records ``available_cpus`` and the gate is
hardware-conditional:

* on ≥ 2 CPUs, jobs=2 must reach 1.5× jobs=1 (the
  parallelism-inversion acceptance floor); on ≥ 4 CPUs, jobs=4 must
  hold ≥ 0.95× of jobs=2 (scaling must not collapse);
* the adaptive (planner-routed) rate must never grossly invert —
  ≥ ``1 - 2·tolerance`` of serial on *any* hardware, since the planner
  is free to simply stay serial;
* ratio-vs-baseline comparison applies only when the artifact and the
  committed baseline were measured with the same ``available_cpus``
  (cross-hardware ratio comparison would be meaningless).

To refresh a baseline after an intentional change, run the benchmark
suite and copy the artifact over the baseline file::

    PYTHONPATH=src python -m pytest benchmarks/test_substrate_performance.py \
        benchmarks/test_engine_throughput.py -q
    cp benchmarks/artifacts/BENCH_substrate.json \
       benchmarks/baselines/BENCH_substrate_baseline.json
    cp benchmarks/artifacts/BENCH_engine.json \
       benchmarks/baselines/BENCH_engine_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

DEFAULT_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_substrate.json"
DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "BENCH_substrate_baseline.json"
DEFAULT_ENGINE_ARTIFACT = Path(__file__).parent / "artifacts" / "BENCH_engine.json"
DEFAULT_ENGINE_BASELINE = (
    Path(__file__).parent / "baselines" / "BENCH_engine_baseline.json")

#: Hardware-conditional floors for the engine jobs sweep.
ENGINE_JOBS2_FLOOR = 1.5   # enforced when measured with >= 2 CPUs
ENGINE_JOBS4_FLOOR = 0.95  # jobs4/jobs2, enforced when >= 4 CPUs


def check(artifact_path: Path, baseline_path: Path, tolerance: float) -> int:
    artifact = json.loads(artifact_path.read_text())
    baseline = json.loads(baseline_path.read_text())

    failures = []
    for name, base_entry in sorted(baseline.get("paths", {}).items()):
        base_speedup = base_entry.get("speedup")
        if base_speedup is None:
            continue  # informational entries (e.g. engine throughput)
        current_entry = artifact.get("paths", {}).get(name)
        if current_entry is None:
            failures.append(f"{name}: missing from artifact")
            continue
        current = float(current_entry["speedup"])
        floor = (1.0 - tolerance) * float(base_speedup)
        status = "OK" if current >= floor else "REGRESSED"
        print(f"{name:32s} baseline {base_speedup:6.2f}x  current {current:6.2f}x  "
              f"floor {floor:6.2f}x  {status}")
        if current < floor:
            failures.append(
                f"{name}: speedup {current:.2f}x fell below {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x, tolerance {tolerance:.0%})"
            )

    if failures:
        print("\nPerformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nAll hot-path speedups within tolerance.")
    return 0


def check_engine(artifact_path: Path, baseline_path: Path,
                 tolerance: float) -> int:
    artifact = json.loads(artifact_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    cpus = int(artifact.get("available_cpus", 1))
    ratios = artifact.get("ratios", {})
    jobs = artifact.get("jobs", {})
    failures: List[str] = []

    print(f"\nengine jobs sweep (measured with {cpus} CPU(s)):")
    for key, entry in sorted(jobs.items(), key=lambda kv: int(kv[0])):
        rate = float(entry["sequences_per_second"])
        print(f"  jobs={key:<2s} {entry['mode']:<10s} {rate:8.1f} seq/s")

    # Hardware-conditional scaling floors (the acceptance criterion).
    r2 = float(ratios.get("jobs2_vs_jobs1", 0.0))
    r4 = float(ratios.get("jobs4_vs_jobs2", 0.0))
    if cpus >= 2:
        status = "OK" if r2 >= ENGINE_JOBS2_FLOOR else "REGRESSED"
        print(f"  jobs2/jobs1 {r2:5.2f}x  floor {ENGINE_JOBS2_FLOOR:.2f}x  {status}")
        if r2 < ENGINE_JOBS2_FLOOR:
            failures.append(
                f"engine: jobs=2 warm-pool rate is {r2:.2f}x serial "
                f"(< {ENGINE_JOBS2_FLOOR}x) on a {cpus}-CPU host")
    else:
        print(f"  jobs2/jobs1 {r2:5.2f}x  (floor skipped: single CPU)")
    if cpus >= 4:
        status = "OK" if r4 >= ENGINE_JOBS4_FLOOR else "REGRESSED"
        print(f"  jobs4/jobs2 {r4:5.2f}x  floor {ENGINE_JOBS4_FLOOR:.2f}x  {status}")
        if r4 < ENGINE_JOBS4_FLOOR:
            failures.append(
                f"engine: jobs=4 rate is {r4:.2f}x jobs=2 "
                f"(< {ENGINE_JOBS4_FLOOR}x) on a {cpus}-CPU host")
    else:
        print(f"  jobs4/jobs2 {r4:5.2f}x  (floor skipped: < 4 CPUs)")

    # The adaptive engine must never grossly invert: the planner can
    # always fall back to serial, so a big adaptive slowdown is a bug
    # regardless of core count.
    serial_rate = float(jobs.get("1", {}).get("sequences_per_second", 0.0))
    inversion_floor = 1.0 - 2.0 * tolerance
    for key, entry in sorted(jobs.items(), key=lambda kv: int(kv[0])):
        adaptive = entry.get("adaptive_sequences_per_second")
        if adaptive is None or serial_rate <= 0:
            continue
        ratio = float(adaptive) / serial_rate
        status = "OK" if ratio >= inversion_floor else "REGRESSED"
        print(f"  adaptive jobs={key} {ratio:5.2f}x serial  "
              f"floor {inversion_floor:.2f}x  {status}")
        if ratio < inversion_floor:
            failures.append(
                f"engine: adaptive jobs={key} rate is {ratio:.2f}x serial "
                f"(< {inversion_floor:.2f}x) — the planner is inverting")

    # Ratio-vs-baseline drift, only on like-for-like hardware.
    base_cpus = int(baseline.get("available_cpus", 1))
    if base_cpus == cpus:
        for name, current in (("jobs2_vs_jobs1", r2), ("jobs4_vs_jobs2", r4)):
            base = baseline.get("ratios", {}).get(name)
            if base is None:
                continue
            floor = (1.0 - tolerance) * float(base)
            status = "OK" if current >= floor else "REGRESSED"
            print(f"  {name} baseline {float(base):5.2f}x  current "
                  f"{current:5.2f}x  floor {floor:5.2f}x  {status}")
            if current < floor:
                failures.append(
                    f"engine: {name} ratio {current:.2f}x fell below "
                    f"{floor:.2f}x (baseline {float(base):.2f}x)")
    else:
        print(f"  baseline comparison skipped: baseline measured with "
              f"{base_cpus} CPU(s), artifact with {cpus}")

    if failures:
        print("\nEngine throughput regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("Engine jobs sweep within tolerance.")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", type=Path, default=DEFAULT_ARTIFACT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--engine-artifact", type=Path,
                        default=DEFAULT_ENGINE_ARTIFACT)
    parser.add_argument("--engine-baseline", type=Path,
                        default=DEFAULT_ENGINE_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()
    status = check(args.artifact, args.baseline, args.tolerance)
    if args.engine_baseline.exists():
        status = check_engine(args.engine_artifact, args.engine_baseline,
                              args.tolerance) or status
    else:  # pragma: no cover - pre-baseline bootstrap
        print("\n(no committed engine baseline; engine gate skipped)")
    return status


if __name__ == "__main__":
    sys.exit(main())
