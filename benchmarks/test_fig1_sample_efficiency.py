"""Benchmark E2 — Figure 1: sample efficiency versus BOiLS.

Paper protocol: BOiLS runs for 200 evaluations; every other method keeps
going (up to 1000 evaluations) until it recovers 97.5 % of BOiLS's QoR
improvement.  Reported shape: SBO needs ≈1.5× more evaluations, GA ≈2.8×,
DRL >5×, averaged over the ten circuits.

The harness reruns the protocol at benchmark scale and writes the Figure 1
series (average evaluations-to-target per method) as CSV and text.  The
assertions check structure and the weak directional claim that no baseline
reaches the target in *fewer* evaluations than the reference method spent,
on average, by more than the noise floor of the tiny benchmark scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import sample_efficiency_study
from repro.experiments.figures import render_figure1

CIRCUITS = ("adder", "sqrt")
METHODS = ("boils", "sbo", "rs", "ga")


@pytest.fixture(scope="module")
def efficiency_study():
    config = bench_config(CIRCUITS, METHODS)
    return sample_efficiency_study(
        config,
        reference_method="boils",
        target_fraction=0.975,
        extended_budget=3 * config.budget,
    )


def test_fig1_regeneration(efficiency_study, benchmark):
    study = benchmark(lambda: efficiency_study)
    write_artifact("fig1_sample_efficiency.txt", render_figure1(study))
    lines = ["method,avg_evaluations"]
    for method, value in study.average_evaluations.items():
        lines.append(f"{method},{value:.2f}")
    write_artifact("fig1_sample_efficiency.csv", "\n".join(lines))

    assert study.reference_method == "BOiLS"
    assert set(study.targets) == set(CIRCUITS)
    for method in ("SBO", "RS", "GA"):
        assert method in study.average_evaluations


def test_fig1_ratios_are_defined(efficiency_study):
    for method in ("SBO", "RS", "GA"):
        ratio = efficiency_study.speedup_over(method)
        assert ratio > 0


def test_fig1_baselines_do_not_dominate_reference(efficiency_study):
    """The paper's headline: baselines need *more* evaluations than BOiLS.

    Noise-aware form that holds at CI scale.  Two sources of tiny-budget
    noise are excluded from the directional claim:

    * circuits whose reference target is not positive — with a handful of
      evaluations on small circuits BOiLS can tie or lose to ``resyn2``,
      and reaching "97.5 % of a ≤0 % improvement" is free for any method
      (often at evaluation 1), so such circuits carry no signal;
    * a luck floor of one evaluation (or 10 % of the reference count,
      whichever is larger) — a lucky initial design hitting the target
      immediately is sampling noise, not sample-efficiency dominance.

    At paper scale (positive targets everywhere, 200-evaluation budgets)
    this reduces to the original per-circuit directional assertion.
    """
    per_method = efficiency_study.evaluations_to_target
    reference_per_circuit = per_method["BOiLS"]
    for method in ("SBO", "RS", "GA"):
        for circuit, needed in per_method[method].items():
            if efficiency_study.targets[circuit] <= 0.0:
                continue
            reference_needed = reference_per_circuit[circuit]
            floor = 0.5 * reference_needed - max(1.0, 0.1 * reference_needed)
            assert needed >= floor, (
                f"{method} reached the target on {circuit} in {needed} evaluations "
                f"vs BOiLS's {reference_needed} — dominates beyond the noise floor"
            )
