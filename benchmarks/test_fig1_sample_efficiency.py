"""Benchmark E2 — Figure 1: sample efficiency versus BOiLS.

Paper protocol: BOiLS runs for 200 evaluations; every other method keeps
going (up to 1000 evaluations) until it recovers 97.5 % of BOiLS's QoR
improvement.  Reported shape: SBO needs ≈1.5× more evaluations, GA ≈2.8×,
DRL >5×, averaged over the ten circuits.

The harness reruns the protocol at benchmark scale and writes the Figure 1
series (average evaluations-to-target per method) as CSV and text.  The
assertions check structure and the weak directional claim that no baseline
reaches the target in *fewer* evaluations than the reference method spent,
on average, by more than the noise floor of the tiny benchmark scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import sample_efficiency_study
from repro.experiments.figures import render_figure1

CIRCUITS = ("adder", "sqrt")
METHODS = ("boils", "sbo", "rs", "ga")


@pytest.fixture(scope="module")
def efficiency_study():
    config = bench_config(CIRCUITS, METHODS)
    return sample_efficiency_study(
        config,
        reference_method="boils",
        target_fraction=0.975,
        extended_budget=3 * config.budget,
    )


def test_fig1_regeneration(efficiency_study, benchmark):
    study = benchmark(lambda: efficiency_study)
    write_artifact("fig1_sample_efficiency.txt", render_figure1(study))
    lines = ["method,avg_evaluations"]
    for method, value in study.average_evaluations.items():
        lines.append(f"{method},{value:.2f}")
    write_artifact("fig1_sample_efficiency.csv", "\n".join(lines))

    assert study.reference_method == "BOiLS"
    assert set(study.targets) == set(CIRCUITS)
    for method in ("SBO", "RS", "GA"):
        assert method in study.average_evaluations


def test_fig1_ratios_are_defined(efficiency_study):
    for method in ("SBO", "RS", "GA"):
        ratio = efficiency_study.speedup_over(method)
        assert ratio > 0


def test_fig1_baselines_do_not_dominate_reference(efficiency_study):
    """The paper's headline: baselines need *more* evaluations than BOiLS.
    At benchmark scale we assert the weaker form — on average they do not
    need fewer than half of BOiLS's own evaluation count."""
    reference = efficiency_study.average_evaluations["BOiLS"]
    for method in ("SBO", "RS", "GA"):
        assert efficiency_study.average_evaluations[method] >= 0.5 * reference
