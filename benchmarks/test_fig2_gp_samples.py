"""Benchmark E6 — Figure 2: GP prior and posterior samples (SE kernel).

The paper's Figure 2 illustrates samples drawn from a squared-exponential
GP prior and from the posterior after conditioning on data and fitting the
kernel hyperparameters (Equation 4).  The harness regenerates both panels
(as CSV series and an ASCII chart), benchmarks the posterior fit, and
asserts the statistical facts the figure illustrates: the posterior
samples collapse onto the observations while the prior samples do not.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.figures import render_figure2
from repro.gp import GaussianProcess, SquaredExponentialKernel


@pytest.fixture(scope="module")
def gp_setup():
    rng = np.random.default_rng(2022)
    train_x = np.array([0.3, 1.1, 1.9, 2.7, 3.4, 4.2])[:, None]
    train_y = np.sin(1.7 * train_x).ravel() + 0.05 * rng.normal(size=6)
    grid = np.linspace(0.0, 5.0, 60)[:, None]
    return rng, train_x, train_y, grid


def test_fig2_regeneration(gp_setup, benchmark):
    rng, train_x, train_y, grid = gp_setup

    def fit_and_sample():
        gp = GaussianProcess(SquaredExponentialKernel(1), noise_variance=1e-4)
        prior = gp.sample_prior(grid, num_samples=3, rng=np.random.default_rng(1))
        gp.fit_hyperparameters(train_x, train_y, num_steps=15, learning_rate=0.1)
        posterior = gp.sample_posterior(grid, num_samples=3, rng=np.random.default_rng(2))
        return gp, prior, posterior

    gp, prior, posterior = benchmark(fit_and_sample)
    write_artifact("fig2_gp_samples.txt",
                   render_figure2(grid.ravel(), prior, posterior))
    lines = ["x," + ",".join(f"prior{i}" for i in range(3))
             + "," + ",".join(f"post{i}" for i in range(3))]
    for idx, x in enumerate(grid.ravel()):
        row = [f"{x:.4f}"] + [f"{prior[i, idx]:.5f}" for i in range(3)] \
            + [f"{posterior[i, idx]:.5f}" for i in range(3)]
        lines.append(",".join(row))
    write_artifact("fig2_gp_samples.csv", "\n".join(lines))

    # Posterior samples must agree with the data at the training points far
    # better than prior samples do (the visual point of Figure 2).
    mean, _ = gp.predict(train_x)
    posterior_error = float(np.mean(np.abs(mean - train_y)))
    prior_error = float(np.mean(np.abs(prior[:, ::10].mean(axis=0))))
    assert posterior_error < 0.2

    # And the posterior predictive uncertainty shrinks near the data.
    _, std_at_data = gp.predict(train_x)
    _, std_far = gp.predict(np.array([[10.0]]))
    assert float(np.mean(std_at_data)) < float(std_far[0])
