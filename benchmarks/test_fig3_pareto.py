"""Benchmark E4 — Figure 3 (bottom row): area/delay Pareto fronts.

Paper protocol: for the four large circuits, plot the (area, delay) of the
best solution of every method and seed after 200 evaluations, overlay the
joint Pareto front, and report the fraction of each method's solutions
lying on it (55 % BOiLS, 20 % SBO, 15 % GA, 0 % RS/DRL in the paper).

The harness reruns the study at benchmark scale, writes the point cloud
and front to CSV plus a text summary, and asserts the structural
invariants (fronts are non-dominated, percentages are well-formed and at
least one method owns a front point).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import run_experiment
from repro.experiments.figures import render_figure3_pareto
from repro.experiments.pareto import build_pareto_study, is_on_front, pareto_front
from repro.circuits import get_circuit
from repro.mapping import map_aig
from repro.qor import QoREvaluator
from repro.synth.flows import resyn2

CIRCUITS = ("multiplier", "sqrt")
METHODS = ("boils", "rs", "ga")


@pytest.fixture(scope="module")
def pareto_results():
    config = bench_config(CIRCUITS, METHODS)
    results = run_experiment(config)
    # Reference points shown in the paper's plots: the unoptimised circuit
    # ("init") and the resyn2 mapping.
    references = {}
    for circuit in config.circuits:
        aig = get_circuit(circuit, width=config.circuit_width)
        evaluator = QoREvaluator(aig)
        resyn2_mapping = map_aig(resyn2(aig))
        references[circuit] = {
            "init": (evaluator.initial_result.area, evaluator.initial_result.delay),
            "resyn2": (resyn2_mapping.area, resyn2_mapping.delay),
        }
    return results, references, config


def test_fig3_pareto_regeneration(pareto_results, benchmark):
    results, references, config = pareto_results
    study = benchmark(lambda: build_pareto_study(results, references=references))
    write_artifact("fig3_bottom_pareto.csv", study.to_csv())
    write_artifact("fig3_bottom_pareto.txt", render_figure3_pareto(study))

    for circuit in config.circuits:
        front = study.fronts[circuit]
        # The front must itself be non-dominated.
        assert pareto_front(front) == sorted(front)
        # Every front point originates from an evaluated solution or a
        # reference point.
        all_points = {p for pts in study.best_points[circuit].values() for p in pts}
        all_points |= set(references[circuit].values())
        assert set(front) <= all_points


def test_fig3_pareto_percentages_well_formed(pareto_results):
    results, references, _ = pareto_results
    study = build_pareto_study(results, references=references)
    percentages = study.on_front_percentages()
    assert all(0.0 <= value <= 100.0 for value in percentages.values())


def test_fig3_pareto_front_membership_consistency(pareto_results):
    results, references, _ = pareto_results
    study = build_pareto_study(results, references=references)
    for circuit in study.circuits:
        front = study.fronts[circuit]
        for method, points in study.best_points[circuit].items():
            for point in points:
                if is_on_front(point, front):
                    # No other evaluated point may strictly dominate it.
                    for other in front:
                        assert not (other[0] < point[0] and other[1] < point[1])
