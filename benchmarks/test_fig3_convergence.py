"""Benchmark E3 — Figure 3 (middle row): convergence curves.

Paper protocol: best-so-far QoR improvement versus number of tested
sequences on the four largest circuits (hypotenuse, divisor, log2,
multiplier), with all methods given up to 1000 evaluations and BOiLS
capped at 200.  Expected shape: BOiLS's curve reaches its plateau within
~200 evaluations while GA/RS/DRL approach it only much later.

The harness regenerates the mean curves at benchmark scale (two of the
large circuits by default), writes the CSV + ASCII chart artefacts, and
asserts structural invariants of the curves (monotone, correct length,
consistent with the per-run bests).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, write_artifact
from repro.experiments import build_qor_table, run_experiment
from repro.experiments.convergence import build_convergence_curves
from repro.experiments.figures import render_figure3_convergence

CIRCUITS = ("multiplier", "sqrt")
METHODS = ("boils", "rs", "ga")


@pytest.fixture(scope="module")
def convergence_results():
    config = bench_config(CIRCUITS, METHODS)
    return run_experiment(config), config


def test_fig3_convergence_regeneration(convergence_results, benchmark):
    results, config = convergence_results
    curves = benchmark(lambda: build_convergence_curves(results))
    write_artifact("fig3_middle_convergence.csv", curves.to_csv())
    write_artifact("fig3_middle_convergence.txt", render_figure3_convergence(curves))

    for circuit in config.circuits:
        for method in curves.curves[circuit]:
            curve = curves.curve(circuit, method)
            assert len(curve) == config.budget
            assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:])), \
                "best-so-far curves must be monotone"


def test_fig3_convergence_final_values_match_table(convergence_results):
    results, _ = convergence_results
    curves = build_convergence_curves(results)
    table = build_qor_table(results)
    finals = curves.final_values()
    for circuit, per_method in finals.items():
        for method, value in per_method.items():
            assert value == pytest.approx(table.value(circuit, method), abs=1e-9)
