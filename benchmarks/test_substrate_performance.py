"""Substrate micro-benchmarks: synthesis passes, mapping and QoR evaluation.

Not a figure from the paper — these benchmarks track the cost of the
underlying black box (one sequence evaluation = K operation applications +
one LUT mapping), which is what determines how expensive each point of
Figures 1 and 3 is to produce.  Useful for spotting performance
regressions in the AIG engine.
"""

from __future__ import annotations

import pytest

from repro.circuits import get_circuit
from repro.mapping import LutMapper
from repro.qor import QoREvaluator
from repro.synth.flows import resyn2
from repro.synth.operations import apply_sequence, get_operation


@pytest.fixture(scope="module")
def adder():
    return get_circuit("adder", width=8)


@pytest.fixture(scope="module")
def multiplier():
    return get_circuit("multiplier", width=6)


@pytest.mark.parametrize("operation", ["rewrite", "balance", "refactor", "fraig", "dsdb"])
def test_single_operation_speed(benchmark, multiplier, operation):
    op = get_operation(operation)
    result = benchmark(op, multiplier)
    assert result.num_pos == multiplier.num_pos


def test_resyn2_flow_speed(benchmark, adder):
    result = benchmark(resyn2, adder)
    assert result.num_pos == adder.num_pos


def test_lut_mapping_speed(benchmark, multiplier):
    mapper = LutMapper(lut_size=6)
    result = benchmark(mapper.map, multiplier)
    assert result.area > 0


def test_full_sequence_evaluation_speed(benchmark, adder):
    evaluator = QoREvaluator(adder, cache=False)
    sequence = ["balance", "rewrite", "refactor", "resub", "fraig", "dsdb"]
    record = benchmark(evaluator.evaluate, sequence)
    assert record.area > 0


def test_circuit_generation_speed(benchmark):
    aig = benchmark(get_circuit, "multiplier", 8)
    assert aig.num_ands > 0
