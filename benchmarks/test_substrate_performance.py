"""Substrate micro-benchmarks: synthesis passes, mapping and QoR evaluation.

Not a figure from the paper — these benchmarks track the cost of the
underlying black box (one sequence evaluation = K operation applications +
one LUT mapping), which is what determines how expensive each point of
Figures 1 and 3 is to produce.  Useful for spotting performance
regressions in the AIG engine.

``test_hot_path_speedups`` additionally measures the four optimised hot
paths against the frozen reference implementations and records the
ratios to ``benchmarks/artifacts/BENCH_substrate.json``; CI compares
that artifact against the committed baseline in
``benchmarks/baselines/BENCH_substrate_baseline.json`` and fails on a
>25 % regression (see ``benchmarks/check_perf_regression.py``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import ARTIFACT_DIR
from repro.aig._reference import enumerate_cuts_reference
from repro.aig.cuts import enumerate_cuts
from repro.circuits import get_circuit
from repro.gp.gp import GaussianProcess
from repro.gp.kernels._reference import ReferenceSubsequenceStringKernel
from repro.gp.kernels.ssk import SubsequenceStringKernel
from repro.mapping import LutMapper
from repro.mapping._reference import ReferenceLutMapper
from repro.qor import QoREvaluator
from repro.synth.flows import resyn2
from repro.synth.operations import apply_sequence, get_operation

BENCH_JSON = ARTIFACT_DIR / "BENCH_substrate.json"


def _best_seconds(fn, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record_bench_entry(name: str, payload: dict) -> None:
    """Merge one entry into the BENCH_substrate.json artifact."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data.setdefault("meta", {})["python"] = platform.python_version()
    data["meta"]["machine"] = platform.machine()
    data.setdefault("paths", {})[name] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def adder():
    return get_circuit("adder", width=8)


@pytest.fixture(scope="module")
def multiplier():
    return get_circuit("multiplier", width=6)


@pytest.mark.parametrize("operation", ["rewrite", "balance", "refactor", "fraig", "dsdb"])
def test_single_operation_speed(benchmark, multiplier, operation):
    op = get_operation(operation)
    result = benchmark(op, multiplier)
    assert result.num_pos == multiplier.num_pos


def test_resyn2_flow_speed(benchmark, adder):
    result = benchmark(resyn2, adder)
    assert result.num_pos == adder.num_pos


def test_lut_mapping_speed(benchmark, multiplier):
    mapper = LutMapper(lut_size=6)
    result = benchmark(mapper.map, multiplier)
    assert result.area > 0


def test_full_sequence_evaluation_speed(benchmark, adder):
    evaluator = QoREvaluator(adder, cache=False)
    sequence = ["balance", "rewrite", "refactor", "resub", "fraig", "dsdb"]
    record = benchmark(evaluator.evaluate, sequence)
    assert record.area > 0


def test_circuit_generation_speed(benchmark):
    aig = benchmark(get_circuit, "multiplier", 8)
    assert aig.num_ands > 0


# ----------------------------------------------------------------------
# Hot-path speedups vs the frozen reference implementations
# ----------------------------------------------------------------------
class TestHotPathSpeedups:
    """Optimised-vs-reference ratios for the four overhauled hot paths.

    Each test records ``{reference_seconds, optimised_seconds, speedup}``
    into ``BENCH_substrate.json``.  The in-test assertions are loose
    sanity floors (shared CI machines are noisy); the regression gate
    against the committed baseline lives in ``check_perf_regression.py``.
    """

    @pytest.fixture(scope="class")
    def bench_circuit(self):
        return get_circuit("multiplier", width=6)

    def test_cut_enumeration_speedup(self, bench_circuit):
        depths = bench_circuit.levels()
        optimised = _best_seconds(lambda: enumerate_cuts(
            bench_circuit, k=6, max_cuts=8, include_trivial=False, depths=depths))
        reference = _best_seconds(lambda: enumerate_cuts_reference(
            bench_circuit, k=6, max_cuts=8, include_trivial=False, depths=depths))
        record_bench_entry("cut_enumeration", {
            "reference_seconds": reference,
            "optimised_seconds": optimised,
            "speedup": reference / optimised,
        })
        # De-flaked floor: only trips if the "optimised" path is outright
        # slower than the reference (true ratio ~4x); the real threshold
        # lives in check_perf_regression.py against the committed baseline.
        assert reference / optimised > 1.0

    def test_lut_mapping_speedup(self, bench_circuit):
        """Cut enumeration + LUT mapping — the per-evaluation substrate."""
        optimised = _best_seconds(lambda: LutMapper(lut_size=6).map(bench_circuit))
        reference = _best_seconds(lambda: ReferenceLutMapper(lut_size=6).map(bench_circuit))
        speedup = reference / optimised
        record_bench_entry("cut_enum_plus_lut_mapping", {
            "reference_seconds": reference,
            "optimised_seconds": optimised,
            "speedup": speedup,
        })
        assert speedup > 1.0

    def test_gp_hyperparameter_fit_speedup(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 11, size=(30, 15))
        y = rng.normal(size=30)

        def fit(kernel_cls):
            kernel = kernel_cls(max_subsequence_length=3,
                                theta_match=0.62, theta_gap=0.71)
            gp = GaussianProcess(kernel)
            gp.fit_hyperparameters(X, y, num_steps=6,
                                   param_names=["theta_match", "theta_gap"])
            return gp

        optimised = _best_seconds(lambda: fit(SubsequenceStringKernel), repeats=2)
        reference = _best_seconds(lambda: fit(ReferenceSubsequenceStringKernel),
                                  repeats=2)
        speedup = reference / optimised
        record_bench_entry("gp_hyperparameter_fit", {
            "reference_seconds": reference,
            "optimised_seconds": optimised,
            "speedup": speedup,
        })
        assert speedup > 1.0

    def test_round_streaming_checkpoint_overhead(self, tmp_path_factory):
        """Round-granular execution vs the cell-granular PR 3 baseline.

        Runs the same BOiLS cell through the legacy cell-granular worker
        (one opaque result blob, no events) and through the
        round-granular campaign worker with everything on: per-round
        event streaming, per-round trajectory JSONL appends and a
        ``checkpoint_every=1`` optimiser checkpoint (GP state included)
        every round.  The streaming machinery must cost <5 % wall-clock;
        the recorded ``speedup`` (cell-granular / streaming, ~1.0) feeds
        the committed-baseline regression gate like every other path.
        """
        from repro.api import Campaign, CampaignStore, Problem
        from repro.engine import worker
        from repro.engine.grid import build_cell_payload
        from repro.engine.spec import EvaluatorSpec

        spec = EvaluatorSpec.for_circuit("adder", width=8)
        overrides = {"num_initial": 4, "local_search_queries": 50,
                     "adam_steps": 2, "fit_every": 2}
        base_kwargs = dict(spec=spec, method_key="boils", seed=0, budget=12,
                           sequence_length=6, overrides=overrides)
        worker.init_campaign_worker(None)

        cell_granular_payload = build_cell_payload(index=0, **base_kwargs)

        def cell_granular():
            worker.run_grid_cell(cell_granular_payload)

        # Store setup (tmp dir + fsync'd manifest write) happens up
        # front, outside the timed region — the measurement must cover
        # the per-round streaming machinery only, and a fresh store per
        # repetition is still required because a leftover checkpoint
        # would turn the next repetition into an (instant) resume.
        repeats = 4
        prepared = []
        for attempt in range(repeats):
            root = tmp_path_factory.mktemp(f"ckpt-bench-{attempt}")
            CampaignStore(root).initialise(Campaign(
                problems=(Problem("adder", width=8, sequence_length=6),),
                methods=("boils",), seeds=(0,), budget=12,
                method_overrides={"boils": overrides}, name="ckpt-bench"))
            prepared.append(build_cell_payload(
                index=0, cell_id="bench-cell", store_root=str(root),
                checkpoint_every=1, **base_kwargs))

        def streaming():
            payload = prepared.pop(0)
            events = []
            worker.run_campaign_cell(
                payload, event_sink=lambda cid, event: events.append(event))

        baseline_seconds = _best_seconds(cell_granular, repeats=repeats)
        streaming_seconds = _best_seconds(streaming, repeats=repeats)
        overhead = streaming_seconds / baseline_seconds - 1.0
        record_bench_entry("round_streaming_checkpoint", {
            "cell_granular_seconds": baseline_seconds,
            "streaming_seconds": streaming_seconds,
            "overhead_fraction": overhead,
            "speedup": baseline_seconds / streaming_seconds,
        })
        # The acceptance bar: full round-granular persistence costs
        # less than 5 % wall-clock on a representative BOiLS cell.
        assert overhead < 0.05

    def test_incremental_gp_conditioning_speedup(self):
        """Appending observations: rank-k extension vs full refactorise."""
        rng = np.random.default_rng(1)
        n, k = 56, 4
        X = rng.integers(0, 11, size=(n + k, 12))
        y = rng.normal(size=n + k)

        warm = GaussianProcess(SubsequenceStringKernel())
        warm.fit(X[:n], y[:n])
        chol, params = warm._chol, warm._fit_params

        def incremental():
            # Restore the pre-append state, then extend by the new rows.
            warm._X, warm._chol, warm._fit_params = X[:n], chol, params
            warm.update_or_fit(X, y)

        def full_refactorise():
            kernel = ReferenceSubsequenceStringKernel()
            GaussianProcess(kernel).fit(X, y)

        optimised = _best_seconds(incremental)
        reference = _best_seconds(full_refactorise)
        speedup = reference / optimised
        record_bench_entry("incremental_gp_conditioning", {
            "reference_seconds": reference,
            "optimised_seconds": optimised,
            "speedup": speedup,
        })
        assert speedup > 1.0
