"""Benchmark E5 — Table I: SSK sub-sequence contributions.

The paper's Table I works through the contribution ``c_u(seq)`` of three
sub-sequences to three operation sequences, expressing each entry in terms
of the match decay θ_m and gap decay θ_g.  This harness recomputes every
entry symbolically (it must match exactly — this is an algebraic identity,
not a stochastic experiment), regenerates the table for a concrete
(θ_m, θ_g) and benchmarks the kernel evaluation itself (the per-pair DP
that the GP calls thousands of times per BOiLS run).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.gp.kernels.ssk import (
    SubsequenceStringKernel,
    ssk_gram,
    subsequence_contribution,
)
from repro.synth.operations import string_to_sequence

THETA_M = 0.8
THETA_G = 0.6

SEQUENCES = {
    "RwRfDsSoDsBlRw": string_to_sequence("RwRfDsSoDsBlRw"),
    "RwRfDsFrSoBlRw": string_to_sequence("RwRfDsFrSoBlRw"),
    "RwRfDsFrBlSoBl": string_to_sequence("RwRfDsFrBlSoBl"),
}
SUBSEQUENCES = {
    "RwRfDsBlRw": string_to_sequence("RwRfDsBlRw"),
    "RwRfDsFr": string_to_sequence("RwRfDsFr"),
    "RwRf": string_to_sequence("RwRf"),
}

# The paper's entries as (coefficient, match power, gap power).
EXPECTED = {
    ("RwRfDsSoDsBlRw", "RwRfDsBlRw"): (2, 5, 2),
    ("RwRfDsSoDsBlRw", "RwRfDsFr"): (0, 0, 0),
    ("RwRfDsSoDsBlRw", "RwRf"): (1, 2, 0),
    ("RwRfDsFrSoBlRw", "RwRfDsBlRw"): (1, 5, 2),
    ("RwRfDsFrSoBlRw", "RwRfDsFr"): (1, 4, 0),
    ("RwRfDsFrSoBlRw", "RwRf"): (1, 2, 0),
    ("RwRfDsFrBlSoBl", "RwRfDsBlRw"): (0, 0, 0),
    ("RwRfDsFrBlSoBl", "RwRfDsFr"): (1, 4, 0),
    ("RwRfDsFrBlSoBl", "RwRf"): (1, 2, 0),
}


def _table_text() -> str:
    lines = ["Table I — contribution c_u(seq) with "
             f"theta_m={THETA_M}, theta_g={THETA_G}",
             "seq \\ u".ljust(18) + "".join(u.ljust(16) for u in SUBSEQUENCES)]
    for seq_name, seq in SEQUENCES.items():
        row = seq_name.ljust(18)
        for u in SUBSEQUENCES.values():
            row += f"{subsequence_contribution(u, seq, THETA_M, THETA_G):.5f}".ljust(16)
        lines.append(row)
    return "\n".join(lines)


def test_table1_every_entry_matches_paper():
    for (seq_name, u_name), (coeff, m_pow, g_pow) in EXPECTED.items():
        value = subsequence_contribution(
            SUBSEQUENCES[u_name], SEQUENCES[seq_name], THETA_M, THETA_G)
        expected = coeff * THETA_M ** m_pow * THETA_G ** g_pow
        assert value == pytest.approx(expected), (seq_name, u_name)
    write_artifact("table1_ssk_contributions.txt", _table_text())


def test_table1_kernel_gram_benchmark(benchmark, rng=np.random.default_rng(0)):
    """Benchmark the vectorised SSK Gram computation at BOiLS's data sizes."""
    kernel = SubsequenceStringKernel(max_subsequence_length=3,
                                     theta_match=THETA_M, theta_gap=THETA_G)
    X = rng.integers(0, 11, size=(40, 20))

    gram = benchmark(lambda: kernel(X))
    assert gram.shape == (40, 40)
    assert np.allclose(np.diag(gram), 1.0)


def test_table1_dp_matches_direct_contributions(benchmark):
    """The DP gram restricted to order 2 equals the explicit feature dot
    product built from c_u values (on the paper's own sequences)."""
    seqs = list(SEQUENCES.values())
    encode = {name: i for i, name in enumerate(
        {symbol for seq in seqs for symbol in seq})}
    X = np.array([[encode[s] for s in seq] for seq in seqs])

    def dp():
        return ssk_gram(X, X, THETA_M, THETA_G, 2)

    gram = benchmark(dp)
    # Explicit feature expansion over all sub-sequences of length <= 2.
    alphabet = sorted(encode.values())
    from repro.gp.kernels.ssk import exact_kernel_value

    for i in range(len(seqs)):
        for j in range(len(seqs)):
            expected = exact_kernel_value(X[i], X[j], THETA_M, THETA_G, 2, alphabet)
            assert gram[i, j] == pytest.approx(expected)
